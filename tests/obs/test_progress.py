"""ProgressPrinter: throttling, campaign shard lines, rate + ETA."""

from __future__ import annotations

import io

import numpy as np

from repro.core.algorithms import get_algorithm
from repro.core.engine import run_until_sorted
from repro.obs import ProgressPrinter
from repro.obs.events import CampaignEnd, CampaignStart, ShardEnd


def perm_grid(side: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.permutation(side * side).reshape(side, side)


def campaign_start(num_shards: int, resumed: int = 0) -> CampaignStart:
    return CampaignStart(
        campaign="abcdef0123456789",
        algorithm="snake_1",
        side=8,
        trials=num_shards * 4,
        num_shards=num_shards,
        shard_size=4,
        workers=1,
        backend="vectorized",
        resumed_shards=resumed,
    )


def shard_end(index: int, *, from_checkpoint: bool = False) -> ShardEnd:
    return ShardEnd(
        campaign="abcdef0123456789",
        index=index,
        trials=4,
        elapsed=0.01,
        from_checkpoint=from_checkpoint,
    )


class TestRunLines:
    def test_engine_run_produces_output(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream)
        run_until_sorted(get_algorithm("snake_1"), perm_grid(6), observer=printer)
        out = stream.getvalue()
        assert "run 1" in out
        assert printer.summary().startswith("1 runs")


class TestShardLines:
    def test_progress_counter_and_pace_on_final_shard(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream)
        printer.on_campaign_start(campaign_start(3))
        for index in range(3):
            printer.on_shard_end(shard_end(index))
        out = stream.getvalue()
        assert "[3/3" in out
        assert "shards/s" in out

    def test_eta_shown_while_shards_remain(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream, every=5)  # every//5 -> report each shard
        printer.on_campaign_start(campaign_start(10))
        printer.on_shard_end(shard_end(0))
        out = stream.getvalue()
        assert "eta" in out
        assert "shards/s" in out

    def test_checkpoint_shards_excluded_from_rate(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream)
        printer.on_campaign_start(campaign_start(4, resumed=4))
        for index in range(4):
            printer.on_shard_end(shard_end(index, from_checkpoint=True))
        out = stream.getvalue()
        # All shards replayed from checkpoint: no meaningful rate exists,
        # so the pace segment must be absent rather than absurd.
        assert "shards/s" not in out
        assert "eta" not in out
        assert "[4/4]" in out

    def test_campaign_end_line(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream)
        printer.on_campaign_start(campaign_start(2))
        printer.on_campaign_end(
            CampaignEnd(
                campaign="abcdef0123456789",
                trials=8,
                elapsed=0.1,
                complete=True,
                num_shards=2,
                completed_shards=2,
            )
        )
        assert "complete" in stream.getvalue()
