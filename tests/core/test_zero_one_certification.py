"""Stratified 0-1 certification on 6x6 meshes.

The 4x4 mesh is certified exhaustively (65 536 inputs).  For 6x6,
exhaustive certification is out of reach (2^36 inputs), but the 0-1
principle still lets us certify *strata*: all inputs with at most two
zeroes (or at most two ones, by symmetry) exhaustively, plus a large
stratified random sample across every zero count.  Boundary strata are
where transcription bugs (off-by-one offsets, wrong edge handling) show up
first — a lone zero must travel the entire mesh.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest

from repro.core.algorithms import ALGORITHM_NAMES, get_algorithm
from repro.core.engine import default_step_cap, run_until_sorted
from repro.randomness import random_zero_one_grid


def _grids_with_zero_cells(side: int, k: int) -> np.ndarray:
    """All 0-1 grids with exactly ``k`` zeroes."""
    n_cells = side * side
    positions = list(combinations(range(n_cells), k))
    grids = np.ones((len(positions), n_cells), dtype=np.int8)
    for i, pos in enumerate(positions):
        grids[i, list(pos)] = 0
    return grids.reshape(-1, side, side)


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
@pytest.mark.parametrize("k", [0, 1, 2])
def test_exhaustive_low_zero_strata_6x6(name, k):
    grids = _grids_with_zero_cells(6, k)
    out = run_until_sorted(get_algorithm(name), grids, max_steps=default_step_cap(6))
    assert out.all_completed


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
@pytest.mark.parametrize("k", [34, 35, 36])
def test_exhaustive_high_zero_strata_6x6(name, k):
    """By 0-1 symmetry these mirror the low strata; certify them directly."""
    grids = (1 - _grids_with_zero_cells(6, 36 - k)).astype(np.int8)
    out = run_until_sorted(get_algorithm(name), grids, max_steps=default_step_cap(6))
    assert out.all_completed


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_stratified_random_sample_6x6(name, rng):
    """64 random matrices at every zero count 0..36."""
    batches = []
    for k in range(0, 37, 3):
        batches.append(random_zero_one_grid(6, zeros=k, batch=64, rng=rng))
    grids = np.concatenate(batches)
    out = run_until_sorted(get_algorithm(name), grids, max_steps=default_step_cap(6))
    assert out.all_completed


@pytest.mark.parametrize("name", ["snake_1", "snake_2", "snake_3"])
@pytest.mark.parametrize("k", [0, 1, 2])
def test_exhaustive_low_zero_strata_5x5(name, k):
    """Odd-side boundary strata for the snakelike algorithms."""
    grids = _grids_with_zero_cells(5, k)
    out = run_until_sorted(get_algorithm(name), grids, max_steps=default_step_cap(5))
    assert out.all_completed
