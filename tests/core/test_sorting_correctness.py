"""End-to-end sorting correctness for all five algorithms.

Includes the strongest available check: by the 0-1 principle for oblivious
comparison-exchange procedures, exhaustively sorting *every* 0-1 matrix on a
4x4 mesh (all 65536 of them, batched) certifies the schedules on all inputs
of that size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import ALGORITHM_NAMES, SNAKE_NAMES, get_algorithm
from repro.core.engine import default_step_cap, run_fixed_steps, run_until_sorted
from repro.core.orders import is_sorted_grid, target_grid
from repro.randomness import random_permutation_grid, random_zero_one_grid


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_exhaustive_zero_one_4x4(name):
    """Every 0-1 input on the 4x4 mesh sorts within the step cap."""
    bits = ((np.arange(65536)[:, None] >> np.arange(16)) & 1).astype(np.int8)
    grids = bits.reshape(-1, 4, 4)
    out = run_until_sorted(get_algorithm(name), grids, max_steps=default_step_cap(4))
    assert out.all_completed


@pytest.mark.parametrize("name", SNAKE_NAMES)
def test_exhaustive_zero_one_3x3(name):
    grids = ((np.arange(512)[:, None] >> np.arange(9)) & 1).astype(np.int8).reshape(-1, 3, 3)
    out = run_until_sorted(get_algorithm(name), grids, max_steps=default_step_cap(3))
    assert out.all_completed


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
@pytest.mark.parametrize("side", [4, 6, 8])
def test_random_permutations_sort(name, side, rng):
    grids = random_permutation_grid(side, batch=20, rng=rng)
    out = run_until_sorted(get_algorithm(name), grids)
    assert out.all_completed
    assert is_sorted_grid(out.final, get_algorithm(name).order).all()


@pytest.mark.parametrize("name", SNAKE_NAMES)
@pytest.mark.parametrize("side", [5, 7, 9])
def test_random_permutations_sort_odd_side(name, side, rng):
    grids = random_permutation_grid(side, batch=20, rng=rng)
    out = run_until_sorted(get_algorithm(name), grids)
    assert out.all_completed


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_sorted_grid_is_fixed_point(name, rng):
    """Once sorted, every further step leaves the grid unchanged — the
    property that makes first-hit completion detection exact."""
    side = 6
    schedule = get_algorithm(name)
    tgt = target_grid(np.arange(side * side), side, schedule.order)
    after = run_fixed_steps(schedule, tgt, 4 * side)
    np.testing.assert_array_equal(after, tgt)


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_zero_one_fixed_point_with_ties(name, rng):
    side = 6
    schedule = get_algorithm(name)
    grid01 = random_zero_one_grid(side, rng=rng)
    tgt = target_grid(grid01, side, schedule.order)
    after = run_fixed_steps(schedule, tgt, 4 * side)
    np.testing.assert_array_equal(after, tgt)


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_multiset_preserved(name, rng):
    """Comparator networks permute values; nothing is created or lost."""
    side = 8
    grid = random_permutation_grid(side, rng=rng)
    after = run_fixed_steps(get_algorithm(name), grid, 17)
    assert sorted(after.ravel().tolist()) == sorted(grid.ravel().tolist())


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_steps_scale_linearly(name, rng):
    """Theta(N) average: mean steps at side 12 is close to (12/8)^2 x the
    mean at side 8 (loose factor check, the experiments do it properly)."""
    means = {}
    for side in (8, 12):
        grids = random_permutation_grid(side, batch=24, rng=rng)
        out = run_until_sorted(get_algorithm(name), grids)
        means[side] = float(np.mean(out.steps))
    ratio = means[12] / means[8]
    expected = (12 * 12) / (8 * 8)
    assert 0.55 * expected <= ratio <= 1.45 * expected


def test_worst_case_within_engine_cap(rng):
    """The generous default cap holds even for adversarial inputs."""
    from repro.baselines.no_wrap import smallest_column_adversary

    for name in ALGORITHM_NAMES:
        out = run_until_sorted(get_algorithm(name), smallest_column_adversary(8).astype(np.int64))
        assert out.all_completed
