"""Tests for the rectangular-mesh extension package."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms import ALGORITHM_NAMES, SNAKE_NAMES, get_algorithm
from repro.core.engine import run_until_sorted
from repro.errors import DimensionError, StepLimitExceeded, UnsupportedMeshError
from repro.randomness import random_permutation_grid
from repro.rect import (
    RectCompiledSchedule,
    rect_is_sorted,
    rect_rank_grid,
    rect_run_until_sorted,
    rect_step_cap,
    rect_target_grid,
    validate_rect,
)


def _perm(rows: int, cols: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.permutation(rows * cols).reshape(rows, cols)


class TestRectOrders:
    def test_rank_grid_snake(self):
        grid = rect_rank_grid(2, 3, "snake")
        np.testing.assert_array_equal(grid, [[0, 1, 2], [5, 4, 3]])

    def test_rank_grid_row_major(self):
        grid = rect_rank_grid(3, 2, "row_major")
        np.testing.assert_array_equal(grid, [[0, 1], [2, 3], [4, 5]])

    def test_target_and_sorted(self):
        tgt = rect_target_grid(np.arange(12)[::-1], 3, 4, "snake")
        assert rect_is_sorted(tgt, "snake")
        assert not rect_is_sorted(tgt, "row_major")

    def test_validate_rect(self):
        assert validate_rect(np.zeros((3, 5))) == (3, 5)
        with pytest.raises(DimensionError):
            validate_rect(np.zeros(5))

    def test_unknown_order(self):
        with pytest.raises(DimensionError):
            rect_rank_grid(2, 2, "spiral")

    def test_wrong_size(self):
        with pytest.raises(DimensionError):
            rect_target_grid(np.arange(10), 3, 4, "snake")


class TestRectExecution:
    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    @pytest.mark.parametrize("shape", [(4, 6), (6, 4), (3, 8), (8, 8)])
    def test_sorts_rectangles(self, name, shape):
        rows, cols = shape
        schedule = get_algorithm(name)
        if schedule.requires_even_side and cols % 2:
            pytest.skip("row-major needs even column count")
        out = rect_run_until_sorted(schedule, _perm(rows, cols, 1))
        assert bool(np.all(out.completed))
        assert rect_is_sorted(out.final, schedule.order)

    @pytest.mark.parametrize("name", SNAKE_NAMES)
    @pytest.mark.parametrize("shape", [(3, 5), (5, 3), (7, 4)])
    def test_snakes_on_odd_shapes(self, name, shape):
        out = rect_run_until_sorted(get_algorithm(name), _perm(*shape, 2))
        assert bool(np.all(out.completed))

    def test_row_major_odd_cols_rejected(self):
        with pytest.raises(UnsupportedMeshError):
            RectCompiledSchedule(get_algorithm("row_major_row_first"), 4, 5)

    def test_row_major_odd_rows_allowed(self):
        out = rect_run_until_sorted(get_algorithm("row_major_row_first"), _perm(5, 4, 3))
        assert bool(np.all(out.completed))

    def test_tiny_rejected(self):
        # A 1x1 mesh has nothing to compare and is still rejected; 1xN
        # linear arrays became first-class with the schedule registry's
        # linear topology and must compile and sort.
        with pytest.raises(UnsupportedMeshError):
            RectCompiledSchedule(get_algorithm("snake_1"), 1, 1)
        out = rect_run_until_sorted(get_algorithm("snake_1"), _perm(1, 4, 7))
        assert bool(np.all(out.completed))

    def test_cap(self):
        out = rect_run_until_sorted(get_algorithm("snake_3"), _perm(4, 6, 4), max_steps=1)
        assert int(out.steps) == -1
        with pytest.raises(StepLimitExceeded):
            rect_run_until_sorted(
                get_algorithm("snake_3"), _perm(4, 6, 4), max_steps=1, raise_on_cap=True
            )

    def test_batched(self):
        grids = np.stack([_perm(4, 6, s) for s in range(5)])
        out = rect_run_until_sorted(get_algorithm("snake_1"), grids)
        assert out.steps.shape == (5,)
        assert bool(np.all(out.completed))

    def test_step_cap_scales(self):
        assert rect_step_cap(4, 8) > 8 * 32


class TestSquareAgreement:
    """On squares, the rect executor must agree exactly with the core engine."""

    @given(
        name=st.sampled_from(ALGORITHM_NAMES),
        side=st.sampled_from([4, 6]),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=20)
    def test_same_step_counts(self, name, side, seed):
        grid = random_permutation_grid(side, rng=seed)
        core = run_until_sorted(get_algorithm(name), grid)
        rect = rect_run_until_sorted(get_algorithm(name), grid)
        assert core.steps_scalar() == rect.steps_scalar()
        np.testing.assert_array_equal(core.final, rect.final)
