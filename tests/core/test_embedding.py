"""Tests tying the row-major algorithms to the embedded 1-D bubble sort."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import get_algorithm
from repro.core.embedding import (
    as_embedded_array,
    embedded_index,
    embedded_pairs_even_step,
    embedded_pairs_odd_step,
    from_embedded_array,
)
from repro.core.engine import run_fixed_steps
from repro.core.schedule import comparator_pairs
from repro.errors import DimensionError
from repro.linear.odd_even import transposition_step
from repro.randomness import random_permutation_grid


class TestRoundTrip:
    def test_index(self):
        assert embedded_index(1, 2, 4) == 6

    def test_index_out_of_range(self):
        with pytest.raises(DimensionError):
            embedded_index(4, 0, 4)

    def test_as_from_roundtrip(self, rng):
        grid = random_permutation_grid(6, rng=rng)
        np.testing.assert_array_equal(
            from_embedded_array(as_embedded_array(grid), 6), grid
        )

    def test_from_wrong_length(self):
        with pytest.raises(DimensionError):
            from_embedded_array(np.arange(10), 4)


class TestEmbeddedPairSets:
    @pytest.mark.parametrize("side", [4, 6, 8])
    def test_odd_step_pairs_equal_row_odd_comparators(self, side):
        schedule = get_algorithm("row_major_row_first")
        row_odd = schedule.steps[0].ops[0]
        mesh_pairs = {frozenset(p) for p in comparator_pairs(row_odd, side)}
        embedded = {frozenset(p) for p in embedded_pairs_odd_step(side)}
        assert mesh_pairs == embedded

    @pytest.mark.parametrize("side", [4, 6, 8])
    def test_even_step_pairs_equal_row_even_plus_wrap(self, side):
        schedule = get_algorithm("row_major_row_first")
        step3 = schedule.steps[2]
        mesh_pairs = {
            frozenset(p) for op in step3.ops for p in comparator_pairs(op, side)
        }
        embedded = {frozenset(p) for p in embedded_pairs_even_step(side)}
        assert mesh_pairs == embedded

    def test_odd_side_rejected(self):
        with pytest.raises(DimensionError):
            embedded_pairs_odd_step(5)


class TestStepEquivalence:
    """Applying mesh step k equals applying the 1-D step to the embedding."""

    @pytest.mark.parametrize("side", [4, 6])
    def test_row_odd_step_is_linear_odd_step(self, side, rng):
        grid = random_permutation_grid(side, rng=rng)
        mesh_after = run_fixed_steps(get_algorithm("row_major_row_first"), grid, 1)
        linear = as_embedded_array(grid)
        transposition_step(linear, 1)  # 1-D odd step
        np.testing.assert_array_equal(as_embedded_array(mesh_after), linear)

    @pytest.mark.parametrize("side", [4, 6])
    def test_row_even_plus_wrap_is_linear_even_step(self, side, rng):
        grid = random_permutation_grid(side, rng=rng)
        # isolate step 3 by starting the schedule there
        from repro.core.engine import CompiledSchedule

        compiled = CompiledSchedule(get_algorithm("row_major_row_first"), side)
        work = grid.copy()
        compiled.apply_step(work, 3)
        linear = as_embedded_array(grid)
        transposition_step(linear, 2)  # 1-D even step
        np.testing.assert_array_equal(as_embedded_array(work), linear)

    def test_column_steps_move_toward_target(self, rng):
        """A column comparator moves the smaller value up = earlier in the
        embedded order; it can only decrease the number of inversions."""
        side = 6
        grid = random_permutation_grid(side, rng=rng)

        def inversions(a):
            a = as_embedded_array(a)
            return int(np.sum(a[:, None] > a[None, :])) if False else sum(
                int(x > y) for i, x in enumerate(a) for y in a[i + 1 :]
            )

        from repro.core.engine import CompiledSchedule

        compiled = CompiledSchedule(get_algorithm("row_major_row_first"), side)
        work = grid.copy()
        before = inversions(work)
        compiled.apply_step(work, 2)  # column odd step
        assert inversions(work) <= before
