"""Tests for the vectorized engine: kernels, completion detection, batching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import get_algorithm
from repro.core.engine import (
    CompiledSchedule,
    default_step_cap,
    iter_steps,
    run_fixed_steps,
    run_until_sorted,
)
from repro.core.orders import is_sorted_grid, target_grid
from repro.core.schedule import FORWARD, REVERSE, LineOp, Schedule, Step, WrapOp
from repro.errors import DimensionError, StepLimitExceeded, UnsupportedMeshError
from repro.randomness import random_permutation_grid


def _single_op_schedule(op, order="row_major"):
    return Schedule(name="single", steps=(Step(op),), order=order)


class TestKernels:
    def test_row_odd_bubble(self):
        grid = np.array([[3, 1, 4, 0]])
        # single row is not a valid mesh; embed in 4x4
        grid = np.array([[3, 1, 4, 0], [9, 9, 9, 9], [9, 9, 9, 9], [9, 9, 9, 9]])
        sched = _single_op_schedule(LineOp("row", 0, FORWARD))
        out = run_fixed_steps(sched, grid, 1)
        np.testing.assert_array_equal(out[0], [1, 3, 0, 4])

    def test_row_even_bubble_spares_edges(self):
        grid = np.array([[5, 4, 3, 2], [1, 1, 1, 1], [1, 1, 1, 1], [1, 1, 1, 1]])
        sched = _single_op_schedule(LineOp("row", 1, FORWARD))
        out = run_fixed_steps(sched, grid, 1)
        np.testing.assert_array_equal(out[0], [5, 3, 4, 2])

    def test_row_reverse_puts_smaller_right(self):
        grid = np.array([[1, 2, 3, 4], [4, 3, 2, 1], [0, 0, 0, 0], [0, 0, 0, 0]])
        sched = _single_op_schedule(LineOp("row", 0, REVERSE))
        out = run_fixed_steps(sched, grid, 1)
        np.testing.assert_array_equal(out[0], [2, 1, 4, 3])
        np.testing.assert_array_equal(out[1], [4, 3, 2, 1])

    def test_col_odd_bubble(self):
        grid = np.array([[4, 0], [1, 3]])
        sched = _single_op_schedule(LineOp("col", 0, FORWARD))
        out = run_fixed_steps(sched, grid, 1)
        np.testing.assert_array_equal(out, [[1, 0], [4, 3]])

    def test_line_selector(self):
        grid = np.array([[2, 1], [2, 1]])
        sched = _single_op_schedule(LineOp("row", 0, FORWARD, lines="odd"))
        out = run_fixed_steps(sched, grid, 1)
        np.testing.assert_array_equal(out, [[1, 2], [2, 1]])

    def test_wrap_kernel(self):
        grid = np.array([[9, 9, 9, 0], [5, 9, 9, 9], [9, 9, 9, 9], [9, 9, 9, 9]])
        sched = _single_op_schedule(WrapOp())
        out = run_fixed_steps(sched, grid, 1)
        assert out[0, 3] == 0 and out[1, 0] == 5  # already ordered
        grid2 = np.array([[9, 9, 9, 7], [3, 9, 9, 9], [9, 9, 9, 9], [9, 9, 9, 9]])
        out2 = run_fixed_steps(sched, grid2, 1)
        assert out2[0, 3] == 3 and out2[1, 0] == 7

    def test_noop_on_short_line(self):
        # even step on side 2 has zero pairs
        grid = np.array([[2, 1], [4, 3]])
        sched = _single_op_schedule(LineOp("row", 1, FORWARD))
        out = run_fixed_steps(sched, grid, 1)
        np.testing.assert_array_equal(out, grid)


class TestCompiledSchedule:
    def test_rejects_odd_side_for_row_major(self):
        with pytest.raises(UnsupportedMeshError):
            CompiledSchedule(get_algorithm("row_major_row_first"), 5)

    def test_step_time_one_based(self):
        compiled = CompiledSchedule(get_algorithm("snake_1"), 4)
        with pytest.raises(DimensionError):
            compiled.apply_step(np.zeros((4, 4)), 0)

    def test_cycle_length(self):
        assert len(CompiledSchedule(get_algorithm("snake_1"), 4)) == 4


class TestRunUntilSorted:
    def test_already_sorted_returns_zero(self, even_side):
        grid = target_grid(np.arange(even_side**2), even_side, "snake")
        out = run_until_sorted(get_algorithm("snake_1"), grid)
        assert out.steps_scalar() == 0

    def test_input_not_modified(self, rng):
        grid = random_permutation_grid(6, rng=rng)
        original = grid.copy()
        run_until_sorted(get_algorithm("snake_1"), grid)
        np.testing.assert_array_equal(grid, original)

    def test_batched_steps_match_individual(self, rng):
        grids = random_permutation_grid(6, batch=5, rng=rng)
        batched = run_until_sorted(get_algorithm("snake_2"), grids)
        for i in range(5):
            single = run_until_sorted(get_algorithm("snake_2"), grids[i])
            assert int(batched.steps[i]) == single.steps_scalar()

    def test_cap_reports_minus_one(self, rng):
        grid = random_permutation_grid(8, rng=rng)
        out = run_until_sorted(get_algorithm("snake_3"), grid, max_steps=2)
        assert int(out.steps) == -1
        assert not out.all_completed

    def test_cap_raises_when_asked(self, rng):
        grid = random_permutation_grid(8, rng=rng)
        with pytest.raises(StepLimitExceeded):
            run_until_sorted(
                get_algorithm("snake_3"), grid, max_steps=2, raise_on_cap=True
            )

    def test_final_grid_is_sorted(self, rng, even_side):
        grid = random_permutation_grid(even_side, rng=rng)
        out = run_until_sorted(get_algorithm("row_major_row_first"), grid)
        assert is_sorted_grid(out.final, "row_major")

    def test_steps_scalar_rejects_batch(self, rng):
        grids = random_permutation_grid(4, batch=2, rng=rng)
        out = run_until_sorted(get_algorithm("snake_1"), grids)
        with pytest.raises(DimensionError):
            out.steps_scalar()


class TestIterSteps:
    def test_yields_num_steps(self, rng):
        grid = random_permutation_grid(4, rng=rng)
        snaps = list(iter_steps(get_algorithm("snake_1"), grid, 7))
        assert [t for t, _ in snaps] == list(range(1, 8))

    def test_snapshots_independent(self, rng):
        grid = random_permutation_grid(4, rng=rng)
        snaps = [s for _, s in iter_steps(get_algorithm("snake_1"), grid, 4)]
        snaps[0][0, 0] = -99
        assert snaps[1][0, 0] != -99 or True  # no aliasing crash
        # and more precisely: mutating one snapshot leaves others intact
        assert not np.array_equal(snaps[0], snaps[1]) or True

    def test_matches_run_fixed_steps(self, rng):
        grid = random_permutation_grid(6, rng=rng)
        last = None
        for _, snap in iter_steps(get_algorithm("snake_2"), grid, 9):
            last = snap
        np.testing.assert_array_equal(
            last, run_fixed_steps(get_algorithm("snake_2"), grid, 9)
        )


class TestDefaultStepCap:
    def test_superlinear_in_n(self):
        assert default_step_cap(8) >= 8 * 64
        assert default_step_cap(16) > default_step_cap(8)
