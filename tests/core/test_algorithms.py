"""Tests for the five algorithm builders and the registry."""

from __future__ import annotations

import pytest

from repro.core.algorithms import (
    ALGORITHM_NAMES,
    ALGORITHMS,
    ROW_MAJOR_NAMES,
    SNAKE_NAMES,
    check_side,
    get_algorithm,
    snake_1,
    snake_2,
    snake_3,
)
from repro.core.schedule import FORWARD, REVERSE, LineOp, WrapOp
from repro.errors import UnsupportedMeshError


class TestRegistry:
    def test_five_algorithms(self):
        assert len(ALGORITHM_NAMES) == 5
        assert set(ROW_MAJOR_NAMES) | set(SNAKE_NAMES) == set(ALGORITHM_NAMES)

    def test_get_by_name(self):
        for name in ALGORITHM_NAMES:
            schedule = get_algorithm(name)
            assert schedule.name == name
            assert len(schedule.steps) == 4

    def test_unknown_name(self):
        with pytest.raises(UnsupportedMeshError):
            get_algorithm("bitonic")

    def test_builders_return_fresh_schedules(self):
        assert ALGORITHMS["snake_1"]() == ALGORITHMS["snake_1"]()


class TestSideConstraints:
    @pytest.mark.parametrize("name", ROW_MAJOR_NAMES)
    def test_row_major_rejects_odd(self, name):
        with pytest.raises(UnsupportedMeshError):
            check_side(get_algorithm(name), 5)

    @pytest.mark.parametrize("name", SNAKE_NAMES)
    def test_snake_accepts_odd(self, name):
        check_side(get_algorithm(name), 5)

    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_rejects_tiny(self, name):
        with pytest.raises(UnsupportedMeshError):
            check_side(get_algorithm(name), 1)

    @pytest.mark.parametrize("name", ROW_MAJOR_NAMES)
    def test_row_major_order_and_wrap(self, name):
        schedule = get_algorithm(name)
        assert schedule.order == "row_major"
        assert schedule.uses_wraparound
        assert schedule.requires_even_side

    @pytest.mark.parametrize("name", SNAKE_NAMES)
    def test_snake_order_no_wrap(self, name):
        schedule = get_algorithm(name)
        assert schedule.order == "snake"
        assert not schedule.uses_wraparound
        assert not schedule.requires_even_side


def _ops(schedule, step_idx):
    return schedule.steps[step_idx].ops


class TestPaperTranscription:
    """Pin each algorithm's steps to the paper's prose."""

    def test_row_first_cycle(self):
        s = get_algorithm("row_major_row_first")
        (op1,) = _ops(s, 0)
        assert (op1.axis, op1.offset, op1.direction, op1.lines) == ("row", 0, FORWARD, "all")
        (op2,) = _ops(s, 1)
        assert (op2.axis, op2.offset) == ("col", 0)
        ops3 = _ops(s, 2)
        assert any(isinstance(o, WrapOp) for o in ops3)
        row3 = next(o for o in ops3 if isinstance(o, LineOp))
        assert (row3.axis, row3.offset) == ("row", 1)
        (op4,) = _ops(s, 3)
        assert (op4.axis, op4.offset) == ("col", 1)

    def test_col_first_is_pairwise_swapped(self):
        a = get_algorithm("row_major_row_first")
        b = get_algorithm("row_major_col_first")
        assert b.steps[0] == a.steps[1]
        assert b.steps[1] == a.steps[0]
        assert b.steps[2] == a.steps[3]
        assert b.steps[3] == a.steps[2]

    def test_snake1_row_steps(self):
        s = snake_1()
        odd_rows, even_rows = _ops(s, 0)
        assert (odd_rows.lines, odd_rows.offset, odd_rows.direction) == ("odd", 0, FORWARD)
        assert (even_rows.lines, even_rows.offset, even_rows.direction) == ("even", 1, REVERSE)
        odd_rows3, even_rows3 = _ops(s, 2)
        assert (odd_rows3.offset, odd_rows3.direction) == (1, FORWARD)
        assert (even_rows3.offset, even_rows3.direction) == (0, REVERSE)

    def test_snake1_column_steps_uniform(self):
        s = snake_1()
        (col2,) = _ops(s, 1)
        assert (col2.axis, col2.offset, col2.lines) == ("col", 0, "all")
        (col4,) = _ops(s, 3)
        assert (col4.axis, col4.offset, col4.lines) == ("col", 1, "all")

    def test_snake2_shares_snake1_odd_steps(self):
        s1, s2 = snake_1(), snake_2()
        assert s2.steps[0] == s1.steps[0]
        assert s2.steps[2] == s1.steps[2]

    def test_snake2_column_parity_split(self):
        s = snake_2()
        odd_cols, even_cols = _ops(s, 1)
        assert (odd_cols.axis, odd_cols.lines, odd_cols.offset) == ("col", "odd", 0)
        assert (even_cols.axis, even_cols.lines, even_cols.offset) == ("col", "even", 1)
        odd_cols4, even_cols4 = _ops(s, 3)
        assert (odd_cols4.offset, even_cols4.offset) == (1, 0)
        # all column steps are ordinary bubble (smaller on top)
        for op in (odd_cols, even_cols, odd_cols4, even_cols4):
            assert op.direction == FORWARD

    def test_snake3_shares_snake2_even_steps(self):
        s2, s3 = snake_2(), snake_3()
        assert s3.steps[1] == s2.steps[1]
        assert s3.steps[3] == s2.steps[3]

    def test_snake3_row_steps_same_offset_both_parities(self):
        s = snake_3()
        odd_rows, even_rows = _ops(s, 0)
        assert odd_rows.offset == even_rows.offset == 0
        assert odd_rows.direction == FORWARD and even_rows.direction == REVERSE
        odd_rows3, even_rows3 = _ops(s, 2)
        assert odd_rows3.offset == even_rows3.offset == 1
