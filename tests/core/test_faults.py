"""Tests for the fault-injection executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.no_wrap import smallest_column_adversary
from repro.core.algorithms import get_algorithm
from repro.core.engine import default_step_cap, run_until_sorted
from repro.core.faults import FaultyCompiledSchedule, faulty_run_until_sorted
from repro.errors import DimensionError, StepLimitExceeded
from repro.randomness import random_permutation_grid


class TestHealthyPathEquivalence:
    @pytest.mark.parametrize("name", ["snake_1", "snake_3", "row_major_row_first"])
    def test_zero_rate_matches_engine(self, name, rng):
        side = 6
        grid = random_permutation_grid(side, rng=rng)
        schedule = get_algorithm(name)
        healthy = run_until_sorted(schedule, grid)
        faulty = faulty_run_until_sorted(
            schedule, grid, max_steps=default_step_cap(side)
        )
        assert healthy.steps_scalar() == faulty.steps_scalar()
        np.testing.assert_array_equal(healthy.final, faulty.final)

    def test_stepwise_equivalence(self, rng):
        from repro.core.engine import CompiledSchedule

        side = 6
        grid = random_permutation_grid(side, rng=rng)
        schedule = get_algorithm("snake_2")
        a, b = grid.copy(), grid.copy()
        healthy = CompiledSchedule(schedule, side)
        faulty = FaultyCompiledSchedule(schedule, side)
        for t in range(1, 20):
            healthy.apply_step(a, t)
            faulty.apply_step(b, t)
            np.testing.assert_array_equal(a, b)


class TestTransientFaults:
    @pytest.mark.parametrize("rate", [0.1, 0.4])
    def test_still_sorts(self, rate, rng):
        side = 8
        grid = random_permutation_grid(side, rng=rng)
        out = faulty_run_until_sorted(
            get_algorithm("snake_1"), grid,
            max_steps=20 * side * side, failure_rate=rate, rng=rng,
            raise_on_cap=True,
        )
        assert out.all_completed

    def test_multiset_preserved_under_faults(self, rng):
        side = 6
        grid = random_permutation_grid(side, rng=rng)
        compiled = FaultyCompiledSchedule(
            get_algorithm("snake_2"), side, failure_rate=0.5, rng=rng
        )
        work = grid.copy()
        for t in range(1, 40):
            compiled.apply_step(work, t)
        assert sorted(work.ravel().tolist()) == sorted(grid.ravel().tolist())

    def test_reproducible_with_seed(self, rng):
        side = 6
        grid = random_permutation_grid(side, rng=rng)
        kwargs = dict(max_steps=4000, failure_rate=0.3)
        a = faulty_run_until_sorted(get_algorithm("snake_1"), grid, rng=11, **kwargs)
        b = faulty_run_until_sorted(get_algorithm("snake_1"), grid, rng=11, **kwargs)
        assert a.steps_scalar() == b.steps_scalar()

    def test_invalid_rate(self):
        with pytest.raises(DimensionError):
            FaultyCompiledSchedule(get_algorithm("snake_1"), 4, failure_rate=1.0)
        with pytest.raises(DimensionError):
            FaultyCompiledSchedule(get_algorithm("snake_1"), 4, failure_rate=-0.1)


class TestPermanentFaults:
    def test_dead_wrap_wires_trap_adversary(self):
        side = 6
        dead = [((h, side - 1), (h + 1, 0)) for h in range(side - 1)]
        with pytest.raises(StepLimitExceeded):
            faulty_run_until_sorted(
                get_algorithm("row_major_row_first"),
                smallest_column_adversary(side),
                max_steps=8 * side * side,
                dead_pairs=dead,
                raise_on_cap=True,
            )

    def test_dead_pair_never_exchanges(self, rng):
        side = 4
        # kill one horizontal pair in the odd row step
        dead = [((0, 0), (0, 1))]
        compiled = FaultyCompiledSchedule(
            get_algorithm("snake_1"), side, dead_pairs=dead
        )
        grid = np.arange(16, dtype=np.int64).reshape(4, 4)[::-1, ::-1].copy()
        before = grid.copy()
        compiled.apply_step(grid, 1)
        # cells (0,0),(0,1) untouched; the other odd-row pair did exchange
        assert grid[0, 0] == before[0, 0] and grid[0, 1] == before[0, 1]
        assert grid[0, 2] == min(before[0, 2], before[0, 3])

    def test_dead_column_pair(self, rng):
        side = 4
        dead = [((0, 0), (1, 0))]
        compiled = FaultyCompiledSchedule(
            get_algorithm("snake_1"), side, dead_pairs=dead
        )
        grid = np.arange(16, dtype=np.int64).reshape(4, 4)[::-1].copy()
        before = grid.copy()
        compiled.apply_step(grid, 2)  # column odd step
        assert grid[0, 0] == before[0, 0] and grid[1, 0] == before[1, 0]
        assert grid[0, 1] == min(before[0, 1], before[1, 1])

    def test_single_dead_pair_deadlocks_locally(self, rng):
        """A single permanently dead comparator typically *deadlocks* the
        row-major sort: these schedules have no redundant path for the final
        exchange at that pair, so the run stalls with the mismatches
        confined to the dead pair's neighbourhood in the embedded linear
        order (rows 1-3 here).  This is the honest fault-tolerance story —
        transient faults are survivable, permanent ones are not."""
        from repro.core.orders import target_grid

        side = 6
        dead_row = 2
        dead = [((dead_row, 2), (dead_row, 3))]
        deadlocks = 0
        for _ in range(5):
            grid = random_permutation_grid(side, rng=rng)
            out = faulty_run_until_sorted(
                get_algorithm("row_major_row_first"), grid,
                max_steps=20 * side * side, dead_pairs=dead,
            )
            if out.all_completed:
                continue
            deadlocks += 1
            tgt = target_grid(grid, side, "row_major")
            mismatch_rows = {int(r) for r, _ in np.argwhere(out.final != tgt)}
            assert mismatch_rows <= {dead_row - 1, dead_row, dead_row + 1}
        assert deadlocks >= 3
