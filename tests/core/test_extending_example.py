"""Keeps docs/EXTENDING.md honest: the worked example must actually work."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import run_fixed_steps, run_until_sorted
from repro.core.orders import target_grid
from repro.core.phases import (
    col_even_bubble,
    col_odd_bubble,
    row_even_bubble,
    row_even_reverse,
    row_odd_bubble,
    row_odd_reverse,
)
from repro.core.schedule import Schedule, Step, validate_schedule
from repro.randomness import random_permutation_grid


def snake_column_first() -> Schedule:
    """The sixth algorithm from docs/EXTENDING.md."""
    return Schedule(
        name="snake_column_first",
        steps=(
            Step(col_odd_bubble()),
            Step(row_odd_bubble("odd"), row_even_reverse("even")),
            Step(col_even_bubble()),
            Step(row_even_bubble("odd"), row_odd_reverse("even")),
        ),
        order="snake",
        requires_even_side=False,
    )


class TestExtendingExample:
    def test_validates(self):
        validate_schedule(snake_column_first(), 8)

    def test_exhaustive_zero_one_4x4(self):
        bits = ((np.arange(65536)[:, None] >> np.arange(16)) & 1).astype(np.int8)
        out = run_until_sorted(snake_column_first(), bits.reshape(-1, 4, 4))
        assert out.all_completed

    @pytest.mark.parametrize("side", [4, 6, 7, 9])
    def test_sorts_random_permutations(self, side, rng):
        grids = random_permutation_grid(side, batch=10, rng=rng)
        out = run_until_sorted(snake_column_first(), grids)
        assert out.all_completed

    def test_sorted_fixed_point(self):
        side = 6
        tgt = target_grid(np.arange(side * side), side, "snake")
        after = run_fixed_steps(snake_column_first(), tgt, 4 * side)
        np.testing.assert_array_equal(after, tgt)

    def test_composes_with_harness(self, rng):
        from repro.experiments.montecarlo import _sort_steps_values as sample_sort_steps
        from repro.core.metrics import schedule_metrics
        from repro.mesh.machine import mesh_sort
        from repro.core.engine import default_step_cap

        steps = sample_sort_steps(snake_column_first(), 6, 4, seed=0)
        assert (steps > 0).all()
        m = schedule_metrics(snake_column_first(), 6)
        assert m.comparators_per_cycle > 0
        grid = random_permutation_grid(6, rng=rng)
        t, _ = mesh_sort(snake_column_first(), grid, max_steps=default_step_cap(6))
        assert t == run_until_sorted(snake_column_first(), grid).steps_scalar()
