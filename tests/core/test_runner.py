"""Tests for the high-level runner API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import get_algorithm
from repro.core.runner import describe_algorithm, resolve_algorithm, sort_grid, sort_steps, trace
from repro.errors import DimensionError, StepLimitExceeded, UnsupportedMeshError
from repro.randomness import random_permutation_grid


class TestSortGrid:
    def test_by_name(self, rng):
        grid = random_permutation_grid(6, rng=rng)
        report = sort_grid("snake_1", grid)
        assert report.algorithm == "snake_1"
        assert report.side == 6
        assert report.steps_scalar() > 0

    def test_by_schedule_object(self, rng):
        grid = random_permutation_grid(6, rng=rng)
        report = sort_grid(get_algorithm("snake_2"), grid)
        assert report.algorithm == "snake_2"

    def test_reference_engine_agrees(self, rng):
        grid = random_permutation_grid(6, rng=rng)
        fast = sort_grid("row_major_row_first", grid)
        slow = sort_grid("row_major_row_first", grid, engine="reference")
        assert fast.steps_scalar() == slow.steps_scalar()
        np.testing.assert_array_equal(fast.final, slow.final)

    def test_reference_engine_rejects_batch(self, rng):
        grids = random_permutation_grid(4, batch=2, rng=rng)
        with pytest.raises(DimensionError):
            sort_grid("snake_1", grids, engine="reference")

    def test_unknown_engine(self, rng):
        with pytest.raises(DimensionError):
            sort_grid("snake_1", random_permutation_grid(4, rng=rng), engine="gpu")

    def test_unknown_algorithm(self, rng):
        with pytest.raises(UnsupportedMeshError):
            sort_grid("quicksort", random_permutation_grid(4, rng=rng))

    def test_row_major_odd_side_rejected(self, rng):
        with pytest.raises(UnsupportedMeshError):
            sort_grid("row_major_row_first", random_permutation_grid(5, rng=rng))

    def test_raise_on_cap(self, rng):
        grid = random_permutation_grid(8, rng=rng)
        with pytest.raises(StepLimitExceeded):
            sort_grid("snake_3", grid, max_steps=1, raise_on_cap=True)


class TestHelpers:
    def test_sort_steps_runs_exactly(self, rng):
        grid = random_permutation_grid(4, rng=rng)
        one = sort_steps("snake_1", grid, 1)
        two = sort_steps("snake_1", grid, 2)
        assert not np.array_equal(one, two) or np.array_equal(one, two)
        # second step applied on top of first
        again = sort_steps("snake_1", one, 1, start_t=2)
        np.testing.assert_array_equal(again, two)

    def test_trace_counts(self, rng):
        grid = random_permutation_grid(4, rng=rng)
        snaps = list(trace("snake_3", grid, 5))
        assert len(snaps) == 5

    def test_resolve_passthrough(self):
        schedule = get_algorithm("snake_1")
        assert resolve_algorithm(schedule) is schedule

    def test_describe(self):
        assert "row_major_col_first" in describe_algorithm("row_major_col_first")
