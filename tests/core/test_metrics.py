"""Tests for the static schedule metrics."""

from __future__ import annotations

import pytest

from repro.schedules import build_shearsort
from repro.core.algorithms import ALGORITHM_NAMES, get_algorithm
from repro.core.metrics import firings_for_steps, schedule_metrics
from repro.errors import DimensionError
from repro.mesh.machine import MeshMachine
from repro.randomness import random_permutation_grid


class TestKnownCounts:
    def test_row_first_side4(self):
        m = schedule_metrics(get_algorithm("row_major_row_first"), 4)
        # step 1: 4 rows x 2 pairs = 8; step 2: same for cols = 8;
        # step 3: 4 rows x 1 even pair + 3 wrap = 7; step 4: 7? cols even: 4 x 1 = 4
        assert m.comparators_per_step == (8, 8, 7, 4)
        assert m.comparators_per_cycle == 27
        assert m.wrap_wires_used == 3

    def test_snake1_side4(self):
        m = schedule_metrics(get_algorithm("snake_1"), 4)
        # step 1: odd rows 2x2 + even rows 2x1 = 6; step 2: 4x2 = 8
        # step 3: odd rows 2x1 + even rows 2x2 = 6; step 4: 4x1 = 4
        assert m.comparators_per_step == (6, 8, 6, 4)
        assert m.wrap_wires_used == 0

    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_wires_within_mesh(self, name):
        side = 6
        m = schedule_metrics(get_algorithm(name), side)
        mesh_wires = 2 * side * (side - 1) + (side - 1 if m.wrap_wires_used else 0)
        assert m.wires_used <= mesh_wires

    def test_bad_side(self):
        with pytest.raises(DimensionError):
            schedule_metrics(get_algorithm("snake_1"), 1)


class TestFirings:
    def test_firings_partial_cycle(self):
        m = schedule_metrics(get_algorithm("row_major_row_first"), 4)
        assert firings_for_steps(m, 0) == 0
        assert firings_for_steps(m, 1) == 8
        assert firings_for_steps(m, 5) == 27 + 8
        assert firings_for_steps(m, 8) == 54

    def test_negative_rejected(self):
        m = schedule_metrics(get_algorithm("snake_1"), 4)
        with pytest.raises(DimensionError):
            firings_for_steps(m, -1)

    def test_matches_mesh_machine_accounting(self, rng):
        """Static firing counts equal the dynamic comparator counts."""
        side = 6
        grid = random_permutation_grid(side, rng=rng)
        for name in ("snake_2", "row_major_row_first"):
            machine = MeshMachine(get_algorithm(name), grid)
            machine.run(13)
            m = schedule_metrics(get_algorithm(name), side)
            assert machine.stats.total_comparisons() == firings_for_steps(m, 13)


class TestWorkRatio:
    def test_bubble_sorts_do_far_more_work_than_nlogn(self):
        """Theta(N) steps x Theta(N) comparators/step >> N log N."""
        side = 16
        n_cells = side * side
        m = schedule_metrics(get_algorithm("snake_1"), side)
        assert m.work_ratio(n_cells) > 10  # quadratic vs N log N

    def test_shearsort_work_smaller(self):
        side = 16
        m_shear = schedule_metrics(build_shearsort(side=side), side)
        m_snake = schedule_metrics(get_algorithm("snake_1"), side)
        from repro.schedules import shearsort_step_count

        shear_work = firings_for_steps(m_shear, shearsort_step_count(side))
        snake_work = firings_for_steps(m_snake, side * side)
        assert shear_work < snake_work


def test_mean_comparators_per_step():
    m = schedule_metrics(get_algorithm("row_major_row_first"), 4)
    assert m.mean_comparators_per_step == 27 / 4
