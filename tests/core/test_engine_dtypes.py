"""Engine robustness across dtypes and value ranges."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import ALGORITHM_NAMES, get_algorithm
from repro.core.engine import run_until_sorted
from repro.core.orders import is_sorted_grid
from repro.randomness import random_permutation_grid


@pytest.mark.parametrize("dtype", [np.int8, np.int16, np.int32, np.int64, np.float64])
def test_dtypes_sort(dtype, rng):
    side = 6
    grid = random_permutation_grid(side, rng=rng).astype(dtype)
    out = run_until_sorted(get_algorithm("snake_1"), grid)
    assert out.all_completed
    assert out.final.dtype == dtype


def test_float_values_with_fractions(rng):
    side = 6
    grid = rng.standard_normal((side, side))
    out = run_until_sorted(get_algorithm("snake_2"), grid)
    assert out.all_completed
    assert is_sorted_grid(out.final, "snake")


def test_negative_values(rng):
    side = 6
    grid = random_permutation_grid(side, rng=rng) - 18
    out = run_until_sorted(get_algorithm("row_major_row_first"), grid)
    assert out.all_completed


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_heavy_duplicates(name, rng):
    """Only three distinct values: completion must still be exact."""
    side = 6
    grid = rng.integers(0, 3, size=(side, side))
    out = run_until_sorted(get_algorithm(name), grid)
    assert out.all_completed
    assert is_sorted_grid(out.final, get_algorithm(name).order)


def test_all_equal_is_instant():
    grid = np.full((6, 6), 7)
    out = run_until_sorted(get_algorithm("snake_3"), grid)
    assert out.steps_scalar() == 0


def test_large_values(rng):
    side = 4
    grid = (random_permutation_grid(side, rng=rng).astype(np.int64) + 2**60)
    out = run_until_sorted(get_algorithm("snake_1"), grid)
    assert out.all_completed


def test_side_two_meshes(rng):
    for name in ALGORITHM_NAMES:
        grid = random_permutation_grid(2, rng=rng)
        out = run_until_sorted(get_algorithm(name), grid)
        assert out.all_completed, name
