"""Tests for the comparator-schedule IR."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import ALGORITHM_NAMES, get_algorithm
from repro.core.schedule import (
    FORWARD,
    REVERSE,
    LineOp,
    Schedule,
    Step,
    WrapOp,
    comparator_pairs,
    line_indices,
    lines_slice,
    pair_count,
    touched_cells,
    validate_schedule,
)
from repro.errors import DimensionError, ScheduleValidationError


class TestLineIndices:
    def test_all(self):
        np.testing.assert_array_equal(line_indices("all", 5), [0, 1, 2, 3, 4])

    def test_paper_odd_is_zero_based_even(self):
        np.testing.assert_array_equal(line_indices("odd", 6), [0, 2, 4])

    def test_paper_even(self):
        np.testing.assert_array_equal(line_indices("even", 6), [1, 3, 5])

    def test_slice_matches_indices(self):
        for lines in ("all", "odd", "even"):
            for side in (4, 5, 7):
                np.testing.assert_array_equal(
                    np.arange(side)[lines_slice(lines)], line_indices(lines, side)
                )

    def test_unknown(self):
        with pytest.raises(DimensionError):
            line_indices("prime", 6)


class TestPairCount:
    @pytest.mark.parametrize(
        "offset,side,expected",
        [(0, 4, 2), (1, 4, 1), (0, 5, 2), (1, 5, 2), (0, 2, 1), (1, 2, 0), (0, 1, 0)],
    )
    def test_counts(self, offset, side, expected):
        assert pair_count(offset, side) == expected

    def test_invalid_offset(self):
        with pytest.raises(DimensionError):
            pair_count(2, 4)


class TestOpValidation:
    def test_bad_axis(self):
        with pytest.raises(ScheduleValidationError):
            LineOp(axis="diag", offset=0, direction=1)

    def test_bad_direction(self):
        with pytest.raises(ScheduleValidationError):
            LineOp(axis="row", offset=0, direction=0)

    def test_bad_lines(self):
        with pytest.raises(ScheduleValidationError):
            LineOp(axis="row", offset=0, direction=1, lines="some")

    def test_empty_step(self):
        with pytest.raises(ScheduleValidationError):
            Step()

    def test_empty_schedule(self):
        with pytest.raises(ScheduleValidationError):
            Schedule(name="x", steps=(), order="snake")


class TestComparatorPairs:
    def test_row_odd_forward(self):
        op = LineOp(axis="row", offset=0, direction=FORWARD, lines="all")
        pairs = comparator_pairs(op, 4)
        assert ((0, 0), (0, 1)) in pairs
        assert ((0, 2), (0, 3)) in pairs
        assert len(pairs) == 8  # 4 rows x 2 pairs

    def test_reverse_swaps_low_high(self):
        op = LineOp(axis="row", offset=0, direction=REVERSE, lines="all")
        pairs = comparator_pairs(op, 2)
        # smaller goes to the higher-index cell
        assert pairs == [((0, 1), (0, 0)), ((1, 1), (1, 0))]

    def test_col_even(self):
        op = LineOp(axis="col", offset=1, direction=FORWARD, lines="odd")
        pairs = comparator_pairs(op, 4)
        assert ((1, 0), (2, 0)) in pairs
        assert all(low[1] in (0, 2) for low, _ in pairs)

    def test_wrap(self):
        pairs = comparator_pairs(WrapOp(), 4)
        assert pairs == [
            ((0, 3), (1, 0)),
            ((1, 3), (2, 0)),
            ((2, 3), (3, 0)),
        ]

    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    @pytest.mark.parametrize("side", [4, 6])
    def test_step_pairs_are_disjoint(self, name, side):
        schedule = get_algorithm(name)
        for step in schedule.steps:
            cells = [c for op in step for pair in comparator_pairs(op, side) for c in pair]
            assert len(cells) == len(set(cells))


class TestTouchedCells:
    def test_wrap_mask(self):
        mask = touched_cells(WrapOp(), 4)
        assert mask[0, 3] and mask[1, 0]
        assert not mask[3, 3] and not mask[0, 0]

    def test_even_row_step_spares_edges(self):
        op = LineOp(axis="row", offset=1, direction=FORWARD, lines="all")
        mask = touched_cells(op, 6)
        assert not mask[:, 0].any()
        assert not mask[:, 5].any()
        assert mask[:, 1:5].all()

    def test_matches_comparator_pairs(self):
        for op in (
            LineOp(axis="row", offset=0, direction=FORWARD),
            LineOp(axis="col", offset=1, direction=REVERSE, lines="even"),
            WrapOp(),
        ):
            mask = touched_cells(op, 5)
            from_pairs = np.zeros((5, 5), dtype=bool)
            for low, high in comparator_pairs(op, 5):
                from_pairs[low] = True
                from_pairs[high] = True
            np.testing.assert_array_equal(mask, from_pairs)


class TestValidateSchedule:
    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    @pytest.mark.parametrize("side", [4, 6, 8, 10])
    def test_paper_algorithms_validate(self, name, side):
        validate_schedule(get_algorithm(name), side)

    def test_overlapping_step_rejected(self):
        bad = Schedule(
            name="bad",
            steps=(
                Step(
                    LineOp(axis="row", offset=0, direction=FORWARD),
                    LineOp(axis="col", offset=0, direction=FORWARD),
                ),
            ),
            order="row_major",
        )
        with pytest.raises(ScheduleValidationError):
            validate_schedule(bad, 4)

    def test_wrap_conflicts_with_odd_side_even_row_step(self):
        # At odd side the even row step reaches the last column, colliding
        # with the wrap op — the structural reason the paper needs 2n.
        conflicted = Schedule(
            name="conflict",
            steps=(Step(LineOp(axis="row", offset=1, direction=FORWARD), WrapOp()),),
            order="row_major",
        )
        validate_schedule(conflicted, 6)  # fine at even side
        with pytest.raises(ScheduleValidationError):
            validate_schedule(conflicted, 5)


class TestScheduleApi:
    def test_step_at_cycles(self):
        schedule = get_algorithm("snake_1")
        assert schedule.step_at(1) is schedule.steps[0]
        assert schedule.step_at(5) is schedule.steps[0]
        assert schedule.step_at(4) is schedule.steps[3]

    def test_step_at_rejects_zero(self):
        with pytest.raises(DimensionError):
            get_algorithm("snake_1").step_at(0)

    def test_uses_wraparound(self):
        assert get_algorithm("row_major_row_first").uses_wraparound
        assert not get_algorithm("snake_1").uses_wraparound

    def test_describe_mentions_steps(self):
        text = get_algorithm("snake_2").describe()
        assert "snake_2" in text
        assert "reverse" in text
