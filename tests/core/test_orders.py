"""Tests for repro.core.orders: rank grids, targets, sortedness predicates."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.orders import (
    is_sorted_grid,
    linearize,
    position_of_rank,
    rank_grid,
    rank_of_position,
    row_major_rank_grid,
    snake_rank_grid,
    target_grid,
    validate_grid,
)
from repro.errors import DimensionError


class TestRankGrids:
    def test_row_major_4(self):
        expected = np.arange(16).reshape(4, 4)
        np.testing.assert_array_equal(row_major_rank_grid(4), expected)

    def test_snake_4(self):
        expected = np.array(
            [[0, 1, 2, 3], [7, 6, 5, 4], [8, 9, 10, 11], [15, 14, 13, 12]]
        )
        np.testing.assert_array_equal(snake_rank_grid(4), expected)

    def test_snake_odd_side(self):
        grid = snake_rank_grid(3)
        expected = np.array([[0, 1, 2], [5, 4, 3], [6, 7, 8]])
        np.testing.assert_array_equal(grid, expected)

    @pytest.mark.parametrize("side", [1, 2, 3, 5, 8])
    @pytest.mark.parametrize("order", ["row_major", "snake"])
    def test_rank_grid_is_permutation(self, side, order):
        grid = rank_grid(side, order)
        assert sorted(grid.ravel().tolist()) == list(range(side * side))

    def test_dispatch_unknown_order(self):
        with pytest.raises(DimensionError):
            rank_grid(4, "diagonal")

    def test_bad_side(self):
        with pytest.raises(DimensionError):
            row_major_rank_grid(0)


class TestPositionRankRoundTrip:
    @given(
        side=st.integers(min_value=1, max_value=12),
        order=st.sampled_from(["row_major", "snake"]),
        data=st.data(),
    )
    def test_roundtrip(self, side, order, data):
        rank = data.draw(st.integers(min_value=0, max_value=side * side - 1))
        r, c = position_of_rank(rank, side, order)
        assert rank_of_position(r, c, side, order) == rank

    def test_snake_even_row_reversal(self):
        # paper row 2 (0-based row 1) runs right to left
        assert position_of_rank(4, 4, "snake") == (1, 3)
        assert position_of_rank(7, 4, "snake") == (1, 0)

    def test_out_of_range(self):
        with pytest.raises(DimensionError):
            position_of_rank(16, 4, "snake")
        with pytest.raises(DimensionError):
            rank_of_position(4, 0, 4, "snake")


class TestSortednessPredicate:
    @pytest.mark.parametrize("order", ["row_major", "snake"])
    @pytest.mark.parametrize("side", [2, 3, 4, 7])
    def test_target_is_sorted(self, order, side):
        values = np.arange(side * side)[::-1]
        tgt = target_grid(values, side, order)
        assert is_sorted_grid(tgt, order)

    def test_unsorted_detected(self):
        grid = np.arange(16).reshape(4, 4)
        grid[0, 0], grid[3, 3] = grid[3, 3], grid[0, 0]
        assert not is_sorted_grid(grid, "row_major")

    def test_row_major_sorted_is_not_snake_sorted(self):
        grid = np.arange(16).reshape(4, 4)
        assert is_sorted_grid(grid, "row_major")
        assert not is_sorted_grid(grid, "snake")

    def test_ties_allowed(self):
        grid = np.zeros((4, 4), dtype=int)
        assert is_sorted_grid(grid, "row_major")
        assert is_sorted_grid(grid, "snake")

    def test_batched(self):
        a = np.arange(16).reshape(4, 4)
        b = a[::-1].copy()
        batch = np.stack([a, b])
        result = is_sorted_grid(batch, "row_major")
        assert result.tolist() == [True, False]

    def test_linearize_snake(self):
        grid = target_grid(np.arange(16), 4, "snake")
        seq = linearize(grid, "snake")
        np.testing.assert_array_equal(seq, np.arange(16))


class TestTargetGrid:
    def test_target_places_sorted_values(self):
        values = np.array([[3, 1], [0, 2]])
        tgt = target_grid(values, 2, "row_major")
        np.testing.assert_array_equal(tgt, [[0, 1], [2, 3]])

    def test_target_snake(self):
        values = np.arange(9)
        tgt = target_grid(values, 3, "snake")
        np.testing.assert_array_equal(tgt, [[0, 1, 2], [5, 4, 3], [6, 7, 8]])

    def test_target_batched(self):
        values = np.stack([np.arange(16).reshape(4, 4)] * 3)
        tgt = target_grid(values, 4, "snake")
        assert tgt.shape == (3, 4, 4)
        assert is_sorted_grid(tgt, "snake").all()

    def test_target_with_ties(self):
        values = np.array([[1, 1], [0, 0]])
        tgt = target_grid(values, 2, "row_major")
        np.testing.assert_array_equal(tgt, [[0, 0], [1, 1]])

    def test_wrong_size(self):
        with pytest.raises(DimensionError):
            target_grid(np.arange(10), 3, "row_major")


class TestValidateGrid:
    def test_accepts_square(self):
        assert validate_grid(np.zeros((5, 5))) == 5

    def test_accepts_batched(self):
        assert validate_grid(np.zeros((7, 3, 3))) == 3

    def test_rejects_rectangular(self):
        with pytest.raises(DimensionError):
            validate_grid(np.zeros((3, 4)))

    def test_rejects_1d(self):
        with pytest.raises(DimensionError):
            validate_grid(np.zeros(9))
