"""Cross-validation: vectorized engine vs pure-Python oracle vs mesh machine.

All executors interpret the same schedule IR; on identical inputs they must
agree cell-for-cell after every step and report identical completion times.
The property test sweeps every backend registered in the unified backend
layer (``repro.backends``), so a newly registered backend is automatically
cross-validated against the vectorized kernels.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import available_backends, run_sort, run_steps
from repro.core.algorithms import ALGORITHM_NAMES, get_algorithm
from repro.core.engine import default_step_cap, run_fixed_steps, run_until_sorted
from repro.core.reference import ReferenceMachine, reference_sort
from repro.mesh.machine import MeshMachine, mesh_sort
from repro.randomness import random_permutation_grid


def _grid_for(name: str, side: int, seed: int) -> np.ndarray:
    return random_permutation_grid(side, rng=seed)


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_numpy_vs_reference_stepwise(name, rng):
    side = 6
    grid = random_permutation_grid(side, rng=rng)
    ref = ReferenceMachine(get_algorithm(name), grid)
    for t in range(1, 25):
        ref.step()
        vec = run_fixed_steps(get_algorithm(name), grid, t)
        np.testing.assert_array_equal(ref.as_array(), vec)


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_numpy_vs_mesh_machine_stepwise(name, rng):
    side = 6
    grid = random_permutation_grid(side, rng=rng)
    machine = MeshMachine(get_algorithm(name), grid)
    for t in range(1, 25):
        machine.step()
        vec = run_fixed_steps(get_algorithm(name), grid, t)
        np.testing.assert_array_equal(machine.as_array(), vec)


@pytest.mark.parametrize("backend", available_backends())
@given(
    name=st.sampled_from(ALGORITHM_NAMES),
    side=st.sampled_from([4, 5, 6]),
    seed=st.integers(min_value=0, max_value=2**31),
    steps=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=30)
def test_engines_agree_property(backend, name, side, seed, steps):
    schedule = get_algorithm(name)
    if schedule.requires_even_side and side % 2:
        side += 1
    grid = _grid_for(name, side, seed)
    out = run_steps(backend, schedule, grid, steps)
    vec = run_fixed_steps(schedule, grid, steps)
    np.testing.assert_array_equal(out, vec)


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_completion_times_agree(name, rng):
    side = 6
    grid = random_permutation_grid(side, rng=rng)
    cap = default_step_cap(side)
    schedule = get_algorithm(name)
    t_vec = run_until_sorted(schedule, grid).steps_scalar()
    t_ref, _ = reference_sort(schedule, grid, max_steps=cap)
    t_mesh, _ = mesh_sort(schedule, grid, max_steps=cap)
    assert t_vec == t_ref == t_mesh


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_completion_times_agree_unified(name, backend, rng):
    side = 6
    grid = random_permutation_grid(side, rng=rng)
    schedule = get_algorithm(name)
    expected = run_until_sorted(schedule, grid).steps_scalar()
    assert run_sort(backend, schedule, grid).steps_scalar() == expected
