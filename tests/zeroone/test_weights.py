"""Tests for column weights and the M statistic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.randomness import random_zero_one_grid
from repro.zeroone.weights import (
    column_weights,
    column_zeros,
    even_column_weights,
    first_column_zeros,
    m_statistic,
    odd_column_zeros,
)


class TestColumnCounts:
    def test_weights_plus_zeros_is_side(self, rng):
        grid = random_zero_one_grid(6, rng=rng)
        np.testing.assert_array_equal(column_weights(grid) + column_zeros(grid), 6)

    def test_known_matrix(self):
        grid = np.array([[0, 1], [0, 1]])
        np.testing.assert_array_equal(column_weights(grid), [0, 2])
        np.testing.assert_array_equal(column_zeros(grid), [2, 0])

    def test_batched(self, rng):
        grids = random_zero_one_grid(4, batch=3, rng=rng)
        assert column_weights(grids).shape == (3, 4)

    def test_odd_even_selectors(self):
        grid = np.array(
            [[0, 1, 0, 1], [0, 1, 0, 1], [0, 1, 1, 1], [1, 1, 1, 1]]
        )
        np.testing.assert_array_equal(odd_column_zeros(grid), [3, 2])
        np.testing.assert_array_equal(even_column_weights(grid), [4, 4])

    def test_first_column_zeros(self):
        grid = np.array([[0, 1], [1, 1]])
        assert first_column_zeros(grid) == 1


class TestMStatistic:
    def test_balanced_matrix(self):
        # alternating columns: odd cols all zeros (weight 0), even all ones
        side = 4
        grid = np.tile(np.array([0, 1, 0, 1]), (side, 1))
        # max odd-col zeros = 4, max even-col weight = 4, n = 2 -> M = 1
        assert m_statistic(grid) == 1

    def test_uniform_matrix(self):
        side = 4
        grid = np.zeros((side, side), dtype=int)
        grid[2:, :] = 1  # top half zeros
        # every column has 2 zeros / 2 ones; n = 2 -> M = 2 - 3 = -1
        assert m_statistic(grid) == -1

    def test_batched(self, rng):
        grids = random_zero_one_grid(4, batch=5, rng=rng)
        out = m_statistic(grids)
        assert out.shape == (5,)
        for i in range(5):
            assert int(out[i]) == m_statistic(grids[i])

    def test_odd_side_rejected(self, rng):
        with pytest.raises(DimensionError):
            m_statistic(random_zero_one_grid(5, rng=rng))

    def test_corollary2_relation(self, rng):
        """M >= Z1 - n - 1 (used throughout Section 2)."""
        for _ in range(20):
            grid = random_zero_one_grid(8, rng=rng)
            assert m_statistic(grid) >= first_column_zeros(grid) - 4 - 1
