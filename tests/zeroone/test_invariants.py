"""Tests for the lemma checkers and the lemmas themselves on real traces."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms import get_algorithm
from repro.core.engine import iter_steps, run_fixed_steps
from repro.randomness import random_zero_one_grid
from repro.zeroone.invariants import (
    check_lemma1_column_sort,
    check_lemma2_odd_row_sort,
    check_lemma3_even_row_sort,
    check_lemma10,
    check_lemmas_5_to_8,
    y_sequence,
    z_sequence,
)


def _zero_one(side: int, seed: int) -> np.ndarray:
    return random_zero_one_grid(side, rng=seed)


class TestRowMajorLemmas:
    @given(seed=st.integers(0, 2**31), side=st.sampled_from([4, 6, 8]))
    @settings(max_examples=20)
    def test_lemmas_1_to_3_hold_on_traces(self, seed, side):
        grid = _zero_one(side, seed)
        checkers = {
            1: check_lemma2_odd_row_sort,
            2: check_lemma1_column_sort,
            3: check_lemma3_even_row_sort,
            0: check_lemma1_column_sort,
        }
        prev = grid
        for t, snap in iter_steps(get_algorithm("row_major_row_first"), grid, 4 * side):
            assert checkers[t % 4](prev, snap) == []
            prev = snap

    def test_lemma1_detects_weight_change(self):
        before = np.array([[0, 1], [1, 1]])
        after = np.array([[1, 1], [1, 1]])
        assert check_lemma1_column_sort(before, after)

    def test_lemma2_detects_untravelled_zero(self):
        # zero in even column stays put -> violation of the travel fact
        before = np.array([[1, 0], [1, 1]])
        after = np.array([[1, 0], [1, 1]])
        assert check_lemma2_odd_row_sort(before, after)

    def test_lemma2_passes_on_actual_step(self):
        before = np.array([[1, 0], [1, 1]])
        after = run_fixed_steps(get_algorithm("row_major_row_first"), before, 1)
        assert check_lemma2_odd_row_sort(before, after) == []

    def test_lemma3_boundary_slack(self):
        """Lemma 3 allows the wrap to lose one zero from column 1 exactly
        when D_1^1 = 0 and D_{2n}^{2n} = 1."""
        side = 4
        grid = np.ones((side, side), dtype=np.int8)
        grid[0, 0] = 0  # the zero at (1,1) is not wrapped anywhere
        # run steps 1..3 so step 3 is the even row sort + wrap
        prev = run_fixed_steps(get_algorithm("row_major_row_first"), grid, 2)
        after = run_fixed_steps(get_algorithm("row_major_row_first"), grid, 3)
        assert check_lemma3_even_row_sort(prev, after) == []


class TestSnakeChains:
    @given(seed=st.integers(0, 2**31), side=st.sampled_from([4, 6, 8, 5, 7]))
    @settings(max_examples=20)
    def test_lemmas_5_to_8(self, seed, side):
        grid = _zero_one(side, seed)
        trace = [s for _, s in iter_steps(get_algorithm("snake_1"), grid, 8 * side)]
        assert check_lemmas_5_to_8(trace) == []

    @given(seed=st.integers(0, 2**31), side=st.sampled_from([4, 6, 8]))
    @settings(max_examples=20)
    def test_lemma_10(self, seed, side):
        grid = _zero_one(side, seed)
        trace = [s for _, s in iter_steps(get_algorithm("snake_2"), grid, 8 * side)]
        assert check_lemma10(trace) == []

    def test_z_sequence_loses_at_most_one_per_cycle(self, rng):
        """Theorem 6's engine: Z1(i+1) >= Z1(i) - 1."""
        grid = random_zero_one_grid(8, rng=rng)
        trace = [s for _, s in iter_steps(get_algorithm("snake_1"), grid, 64)]
        seq = z_sequence(trace)
        z1_values = seq[0::4]
        for a, b in zip(z1_values, z1_values[1:]):
            assert b >= a - 1

    def test_y_sequence_loses_at_most_one_per_cycle(self, rng):
        grid = random_zero_one_grid(8, rng=rng)
        trace = [s for _, s in iter_steps(get_algorithm("snake_2"), grid, 64)]
        seq = y_sequence(trace)
        y1_values = seq[0::4]
        for a, b in zip(y1_values, y1_values[1:]):
            assert b >= a - 1

    def test_chain_checker_detects_violation(self):
        """Feed the checker a fake trace that drops potential too fast."""
        lo = np.ones((4, 4), dtype=np.int8)
        hi = np.zeros((4, 4), dtype=np.int8)
        # Z stats of hi are large, of lo are zero: ordering hi, lo violates
        assert check_lemmas_5_to_8([hi, lo, lo, lo]) != []


class TestAppendixOddSideChains:
    """The appendix's claim that the Z analysis transfers to odd side — for
    both snake_1 (Definitions 12-13) and snake_2 ("the same definitions and
    theorems with some minor variations in the proofs")."""

    @given(seed=st.integers(0, 2**31), side=st.sampled_from([5, 7, 9]))
    @settings(max_examples=15)
    def test_snake1_odd_side_z_chain(self, seed, side):
        grid = _zero_one(side, seed)
        trace = [s for _, s in iter_steps(get_algorithm("snake_1"), grid, 8 * side)]
        assert check_lemmas_5_to_8(trace) == []

    @given(seed=st.integers(0, 2**31), side=st.sampled_from([5, 7, 9]))
    @settings(max_examples=15)
    def test_snake2_odd_side_z_chain(self, seed, side):
        grid = _zero_one(side, seed)
        trace = [s for _, s in iter_steps(get_algorithm("snake_2"), grid, 8 * side)]
        assert check_lemmas_5_to_8(trace) == []
