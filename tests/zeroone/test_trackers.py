"""Tests for the Z/Y potential statistics and thresholds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.randomness import random_zero_one_grid
from repro.zeroone.trackers import (
    f_threshold,
    f_threshold_odd,
    theorem6_additional_steps,
    theorem9_additional_steps,
    theorem13_additional_steps,
    y1_statistic,
    y2_statistic,
    y3_statistic,
    y_threshold,
    z1_statistic,
    z2_statistic,
    z3_statistic,
    z4_statistic,
)


class TestZStatisticsEvenSide:
    def test_all_zero_grid(self):
        side = 4
        grid = np.zeros((side, side), dtype=int)
        # Z1: odd cols (2 cols x 4) + even rows of last col (2 cells)
        assert z1_statistic(grid) == 2 * 4 + 2
        assert z2_statistic(grid) == 2 * 4 + 2
        # Z3: even cols (2 x 4) + odd rows of col 1 (2 cells)
        assert z3_statistic(grid) == 2 * 4 + 2
        assert z4_statistic(grid) == 2 * 4 + 2

    def test_all_one_grid(self):
        grid = np.ones((4, 4), dtype=int)
        assert z1_statistic(grid) == 0
        assert z4_statistic(grid) == 0

    def test_z1_counts_correct_cells(self):
        side = 4
        grid = np.ones((side, side), dtype=int)
        grid[0, 0] = 0  # odd column -> counted
        assert z1_statistic(grid) == 1
        grid2 = np.ones((side, side), dtype=int)
        grid2[1, 3] = 0  # paper-even row of last column -> counted
        assert z1_statistic(grid2) == 1
        grid3 = np.ones((side, side), dtype=int)
        grid3[0, 3] = 0  # paper-odd row of last column -> NOT in Z1 (but in Z2)
        assert z1_statistic(grid3) == 0
        assert z2_statistic(grid3) == 1

    def test_z3_z4_first_column_rows(self):
        side = 4
        grid = np.ones((side, side), dtype=int)
        grid[0, 0] = 0  # paper-odd row of column 1 -> in Z3 not Z4
        assert z3_statistic(grid) == 1
        assert z4_statistic(grid) == 0
        grid[1, 0] = 0  # paper-even row of column 1 -> adds to Z4
        assert z4_statistic(grid) == 1

    def test_batched(self, rng):
        grids = random_zero_one_grid(6, batch=4, rng=rng)
        out = z1_statistic(grids)
        assert out.shape == (4,)
        for i in range(4):
            assert int(out[i]) == z1_statistic(grids[i])


class TestZStatisticsOddSide:
    def test_definition_12_excludes_last_odd_column_body(self):
        side = 5
        grid = np.ones((side, side), dtype=int)
        grid[0, 4] = 0  # paper-odd row of last column: not counted by Z1
        assert z1_statistic(grid) == 0
        grid[1, 4] = 0  # paper-even row of last column: counted
        assert z1_statistic(grid) == 1
        grid2 = np.ones((side, side), dtype=int)
        grid2[2, 2] = 0  # interior odd column: counted
        assert z1_statistic(grid2) == 1


class TestYStatistics:
    def test_all_zero_grid(self):
        side = 4
        grid = np.zeros((side, side), dtype=int)
        assert y1_statistic(grid) == 2 * 4  # odd columns
        # Y2: cols 2..2n-2 (1 col x 4) + odd rows col 1 (2) + even rows col 2n (2)
        assert y2_statistic(grid) == 4 + 2 + 2
        assert y3_statistic(grid) == 4 + 2 + 2

    def test_y_odd_side_rejected(self):
        with pytest.raises(DimensionError):
            y2_statistic(np.zeros((5, 5), dtype=int))

    def test_y1_even_vs_odd_columns(self):
        grid = np.ones((4, 4), dtype=int)
        grid[0, 1] = 0  # even column: not counted
        assert y1_statistic(grid) == 0
        grid[0, 2] = 0  # odd column: counted
        assert y1_statistic(grid) == 1


class TestThresholds:
    def test_f_threshold_value(self):
        # f(alpha, N) = ceil(alpha/2 + alpha/(2 sqrt N)); alpha=32, N=64
        assert f_threshold(32, 64) == 18
        assert f_threshold(0, 64) == 0

    def test_f_threshold_requires_square(self):
        with pytest.raises(DimensionError):
            f_threshold(3, 10)

    def test_f_threshold_odd(self):
        # ceil(alpha (N-1) / (2N)); alpha=13, N=25 -> ceil(13*24/50)=ceil(6.24)=7
        assert f_threshold_odd(13, 25) == 7

    def test_y_threshold(self):
        assert y_threshold(7) == 4
        assert y_threshold(8) == 4

    def test_additional_steps_clip_at_zero(self):
        assert theorem6_additional_steps(0, 32, 64) == 0
        assert theorem9_additional_steps(0, 32) == 0
        assert theorem13_additional_steps(0, 13, 25) == 0

    def test_additional_steps_formula(self):
        x = f_threshold(32, 64) + 5
        assert theorem6_additional_steps(x, 32, 64) == 4 * (5 - 1)
        assert theorem9_additional_steps(20, 32) == 4 * (20 - 16 - 1)
