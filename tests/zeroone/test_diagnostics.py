"""Tests for the per-cycle diagnostics tooling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.orders import target_grid
from repro.errors import DimensionError
from repro.randomness import random_permutation_grid
from repro.zeroone.diagnostics import (
    CycleRecord,
    inversions,
    render_report,
    run_diagnostics,
)


class TestInversions:
    def test_sorted_is_zero(self):
        grid = target_grid(np.arange(16), 4, "snake")
        assert inversions(grid, "snake") == 0
        grid_rm = np.arange(16).reshape(4, 4)
        assert inversions(grid_rm, "row_major") == 0

    def test_reversed_is_maximal(self):
        n = 16
        grid = np.arange(n)[::-1].reshape(4, 4)
        assert inversions(grid, "row_major") == n * (n - 1) // 2

    def test_single_swap(self):
        grid = np.arange(16).reshape(4, 4)
        grid[0, 0], grid[0, 1] = grid[0, 1], grid[0, 0]
        assert inversions(grid, "row_major") == 1

    def test_matches_bruteforce(self, rng):
        grid = random_permutation_grid(5, rng=rng)
        seq = grid.ravel()
        brute = sum(
            1
            for i in range(len(seq))
            for j in range(i + 1, len(seq))
            if seq[i] > seq[j]
        )
        assert inversions(grid, "row_major") == brute

    def test_rejects_batch(self):
        with pytest.raises(DimensionError):
            inversions(np.zeros((2, 3, 3)), "snake")


class TestRunDiagnostics:
    @pytest.mark.parametrize("algorithm", ["snake_1", "snake_2", "row_major_row_first"])
    def test_trace_ends_sorted(self, algorithm, rng):
        grid = random_permutation_grid(6, rng=rng)
        records = run_diagnostics(algorithm, grid)
        assert records[0].t == 0
        assert records[-1].sorted
        assert records[-1].inversions == 0

    def test_cycle_alignment(self, rng):
        records = run_diagnostics("snake_1", random_permutation_grid(6, rng=rng))
        assert all(rec.t % 4 == 0 for rec in records)

    def test_potential_loses_at_most_one_per_cycle(self, rng):
        """Theorem 6's engine visible in the diagnostics."""
        records = run_diagnostics("snake_1", random_permutation_grid(8, rng=rng))
        for a, b in zip(records[1:], records[2:]):
            assert b.potential >= a.potential - 1

    def test_cap_leaves_unsorted_record(self, rng):
        records = run_diagnostics(
            "snake_3", random_permutation_grid(8, rng=rng), max_steps=4
        )
        assert not records[-1].sorted

    def test_rejects_batch(self, rng):
        with pytest.raises(DimensionError):
            run_diagnostics("snake_1", random_permutation_grid(4, batch=2, rng=rng))


class TestRenderReport:
    def test_renders(self, rng):
        records = run_diagnostics("snake_1", random_permutation_grid(4, rng=rng))
        text = render_report(records)
        assert "inversions" in text
        assert str(records[-1].t) in text

    def test_empty_rejected(self):
        with pytest.raises(DimensionError):
            render_report([])

    def test_record_is_frozen(self):
        rec = CycleRecord(0, 1, 2, 3, (0, 0), False)
        with pytest.raises(AttributeError):
            rec.t = 5  # type: ignore[misc]
