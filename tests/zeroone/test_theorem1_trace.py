"""Direct Theorem 1 verification on live traces.

Theorem 1 states: for a mesh with alpha zeroes, if after *some odd row
sorting step* an odd-numbered column holds ``x > ceil(alpha/sqrt(N))``
zeroes, at least ``(x - ceil(alpha/sqrt(N)) - 1) * 2 sqrt(N)`` additional
steps are needed; symmetrically for an even-numbered column with weight
``y > ceil((N-alpha)/sqrt(N))``.

These tests measure the surplus after *every* odd row sorting step of real
runs (both row-major algorithms, several zero counts) and assert the bound
against the realized completion time — the sharpest trace-level exercise of
Section 2's travel machinery.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import get_algorithm
from repro.core.engine import CompiledSchedule, default_step_cap
from repro.core.orders import target_grid
from repro.randomness import random_zero_one_grid
from repro.theory.bounds import theorem1_additional_steps
from repro.zeroone.weights import even_column_weights, odd_column_zeros


def _odd_row_sort_times(algorithm: str, num_cycles: int) -> list[int]:
    """1-based times of the odd row sorting steps in the first cycles."""
    offset = 1 if algorithm == "row_major_row_first" else 2
    return [4 * i + offset for i in range(num_cycles)]


@pytest.mark.parametrize("algorithm", ["row_major_row_first", "row_major_col_first"])
@pytest.mark.parametrize("side", [6, 8])
@pytest.mark.parametrize("alpha_frac", [0.25, 0.5, 0.75])
def test_theorem1_bound_along_traces(algorithm, side, alpha_frac, rng):
    schedule = get_algorithm(algorithm)
    n_cells = side * side
    alpha = int(n_cells * alpha_frac)
    for _ in range(5):
        grid = random_zero_one_grid(side, zeros=alpha, rng=rng)
        target = target_grid(grid, side, "row_major")
        compiled = CompiledSchedule(schedule, side)
        work = np.array(grid, copy=True)
        # First find t_f.
        t_f = 0
        if not np.array_equal(work, target):
            for t in range(1, default_step_cap(side) + 1):
                compiled.apply_step(work, t)
                if np.array_equal(work, target):
                    t_f = t
                    break
            else:
                pytest.fail("run did not complete within the cap")
        # Replay, checking the surplus bound after each odd row sort.
        work = np.array(grid, copy=True)
        odd_row_times = set(_odd_row_sort_times(algorithm, t_f // 4 + 2))
        for t in range(1, t_f + 1):
            compiled.apply_step(work, t)
            if t not in odd_row_times:
                continue
            x = int(odd_column_zeros(work).max())
            bound_zeros = theorem1_additional_steps(x, alpha, side, kind="zeros")
            y = int(even_column_weights(work).max())
            bound_ones = theorem1_additional_steps(y, alpha, side, kind="ones")
            remaining = t_f - t
            assert remaining >= bound_zeros, (
                f"t={t}, x={x}: remaining {remaining} < bound {bound_zeros}"
            )
            assert remaining >= bound_ones, (
                f"t={t}, y={y}: remaining {remaining} < bound {bound_ones}"
            )


def test_theorem1_bound_is_attained_to_within_slack(rng):
    """On the all-zero-column input the bound is near-tight (Corollary 1)."""
    from repro.baselines.no_wrap import smallest_column_adversary
    from repro.zeroone.threshold import threshold_matrix
    from repro.core.engine import run_until_sorted

    side = 8
    adversary = threshold_matrix(smallest_column_adversary(side), side)
    out = run_until_sorted(get_algorithm("row_major_row_first"), adversary)
    # alpha = side zeroes all in one column: x = side after the first odd
    # row sort is impossible (they travel), but Corollary 1's 2N - 4*sqrt(N)
    # must hold and the realized time must not exceed ~2N.
    t_f = out.steps_scalar()
    assert 2 * side * side - 4 * side <= t_f <= 2 * side * side + 4 * side
