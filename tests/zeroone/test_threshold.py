"""Tests for threshold (A01) matrices."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DimensionError
from repro.randomness import paper_zero_count, random_permutation_grid
from repro.zeroone.threshold import is_zero_one, threshold_at, threshold_matrix


class TestThresholdMatrix:
    def test_even_side_half_zeros(self, rng):
        grid = random_permutation_grid(6, rng=rng)
        a01 = threshold_matrix(grid)
        assert int((a01 == 0).sum()) == 18
        assert is_zero_one(a01)

    def test_odd_side_majority_zeros(self, rng):
        grid = random_permutation_grid(5, rng=rng)
        a01 = threshold_matrix(grid)
        assert int((a01 == 0).sum()) == 13  # (25+1)/2

    def test_zeros_mark_smallest(self, rng):
        grid = random_permutation_grid(4, rng=rng)
        a01 = threshold_matrix(grid, zeros=5)
        assert set(grid[a01 == 0].tolist()) == {0, 1, 2, 3, 4}

    def test_batched(self, rng):
        grids = random_permutation_grid(4, batch=3, rng=rng)
        a01 = threshold_matrix(grids)
        assert a01.shape == (3, 4, 4)
        assert ((a01 == 0).sum(axis=(1, 2)) == 8).all()

    def test_arbitrary_distinct_values(self):
        grid = np.array([[10, -5], [100, 7]])
        a01 = threshold_at(grid, 2)
        np.testing.assert_array_equal(a01, [[1, 0], [1, 0]])

    def test_zeros_zero(self):
        grid = np.arange(4).reshape(2, 2)
        np.testing.assert_array_equal(threshold_at(grid, 0), np.ones((2, 2)))

    def test_zeros_all(self):
        grid = np.arange(4).reshape(2, 2)
        np.testing.assert_array_equal(threshold_at(grid, 4), np.zeros((2, 2)))

    def test_out_of_range(self):
        with pytest.raises(DimensionError):
            threshold_at(np.arange(4).reshape(2, 2), 5)

    @given(side=st.sampled_from([2, 3, 4, 5]), seed=st.integers(0, 2**31))
    def test_monotone_in_zeros(self, side, seed):
        grid = random_permutation_grid(side, rng=seed)
        prev = threshold_at(grid, 0)
        for z in range(1, side * side + 1):
            cur = threshold_at(grid, z)
            # zeros only grow
            assert ((prev == 0) <= (cur == 0)).all()
            prev = cur


class TestPaperZeroCount:
    @pytest.mark.parametrize("side,expected", [(4, 8), (6, 18), (5, 13), (7, 25)])
    def test_values(self, side, expected):
        assert paper_zero_count(side) == expected


class TestIsZeroOne:
    def test_true(self):
        assert is_zero_one(np.array([[0, 1], [1, 0]]))

    def test_false(self):
        assert not is_zero_one(np.array([[0, 2], [1, 0]]))
