"""Tests for the snake_3 smallest-element walk (Lemmas 12-13, 15-16, Thm 12)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import default_step_cap
from repro.core.orders import rank_of_position
from repro.errors import DimensionError
from repro.randomness import random_permutation_grid
from repro.zeroone.smallest import (
    min_cell,
    min_trajectory,
    predicted_cell_after_pair,
    predicted_walk,
    snake_rank_of_min,
    steps_lower_bound_from_rank,
    steps_until_min_home,
    theorem12_tail_bound,
)


class TestMinCell:
    def test_basic(self):
        grid = np.array([[5, 2], [1, 9]])
        assert min_cell(grid) == (1, 0)

    def test_rank(self):
        grid = np.array([[5, 2], [1, 9]])
        # (1,0) in snake order on side 2: row 1 reversed -> rank 3
        assert snake_rank_of_min(grid) == 3

    def test_rejects_batch(self):
        with pytest.raises(DimensionError):
            min_cell(np.zeros((2, 3, 3)))


class TestPredictedWalk:
    @given(
        side=st.sampled_from([4, 6, 8, 5, 7, 9]),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=25)
    def test_predicted_matches_actual_until_home(self, side, seed):
        grid = random_permutation_grid(side, rng=seed)
        start = min_cell(grid)
        pairs = 2 * side * side + 4
        actual = min_trajectory("snake_3", grid, pairs)
        predicted = predicted_walk(start, side, pairs)
        for a, p in zip(actual, predicted):
            assert a == p
            if p == (0, 0):
                break

    @given(side=st.sampled_from([4, 6, 5, 7]), seed=st.integers(0, 2**31))
    @settings(max_examples=25)
    def test_rank_monotone_lemmas(self, side, seed):
        """Odd pairs: rank stays or -1; even pairs: exactly -1 (until home)."""
        grid = random_permutation_grid(side, rng=seed)
        start_rank = rank_of_position(*min_cell(grid), side, "snake")
        walk = predicted_walk(min_cell(grid), side, 2 * side * side)
        ranks = [start_rank] + [rank_of_position(r, c, side, "snake") for r, c in walk]
        for i, (a, b) in enumerate(zip(ranks, ranks[1:])):
            if a == 0:
                assert b == 0
                continue
            if i % 2 == 0:  # odd pair
                assert b in (a, a - 1)
            else:  # even pair: exactly one step back along the snake
                assert b == a - 1

    def test_even_pair_requires_aligned_parity(self):
        with pytest.raises(DimensionError):
            predicted_cell_after_pair((0, 1), 4, 1)

    def test_home_is_absorbing(self):
        assert predicted_cell_after_pair((0, 0), 4, 0) == (0, 0)
        assert predicted_cell_after_pair((0, 0), 4, 1) == (0, 0)

    def test_out_of_range_cell(self):
        with pytest.raises(DimensionError):
            predicted_cell_after_pair((4, 0), 4, 0)


class TestTheorem12:
    def test_lower_bound_values(self):
        assert steps_lower_bound_from_rank(1) == 0
        assert steps_lower_bound_from_rank(2) == 1
        assert steps_lower_bound_from_rank(10) == 17

    def test_bound_rejects_zero(self):
        with pytest.raises(DimensionError):
            steps_lower_bound_from_rank(0)

    @given(side=st.sampled_from([4, 6, 5]), seed=st.integers(0, 2**31))
    @settings(max_examples=20)
    def test_sort_time_dominates_2m_minus_3(self, side, seed):
        from repro.core.engine import run_until_sorted
        from repro.core.algorithms import get_algorithm

        grid = random_permutation_grid(side, rng=seed)
        m = rank_of_position(*min_cell(grid), side, "snake") + 1
        out = run_until_sorted(get_algorithm("snake_3"), grid)
        assert out.steps_scalar() >= steps_lower_bound_from_rank(m)

    def test_tail_bound_values(self):
        assert theorem12_tail_bound(0.5, 64) == 0.25 + 0.5 / 128  # repro: allow=RPR106
        assert theorem12_tail_bound(0.0, 64) == 0.0  # repro: allow=RPR106

    def test_tail_bound_rejects_negative(self):
        with pytest.raises(DimensionError):
            theorem12_tail_bound(-0.1, 64)


class TestMinHome:
    def test_home_when_already_there(self):
        grid = np.arange(16).reshape(4, 4)
        assert steps_until_min_home("snake_1", grid, max_steps=10) == 0

    def test_snake3_slower_than_snake1(self, rng):
        """The paper's closing contrast, in expectation over a few trials."""
        side = 10
        totals = {"snake_1": 0, "snake_3": 0}
        for _ in range(10):
            grid = random_permutation_grid(side, rng=rng)
            for name in totals:
                t = steps_until_min_home(name, grid, max_steps=default_step_cap(side))
                assert t >= 0
                totals[name] += t
        assert totals["snake_3"] > totals["snake_1"]

    def test_cap_returns_minus_one(self, rng):
        grid = random_permutation_grid(8, rng=rng)
        if min_cell(grid) != (0, 0):
            assert steps_until_min_home("snake_3", grid, max_steps=1) == -1


class TestPredictedMinHomeSteps:
    def test_home_is_zero(self):
        from repro.zeroone.smallest import predicted_min_home_steps

        assert predicted_min_home_steps((0, 0), 6) == 0

    def test_rank1_cell_is_one_step(self):
        from repro.zeroone.smallest import predicted_min_home_steps

        # (0,1) -> (0,0) happens at step 1 (odd pair, Lemma 12 case 3)
        assert predicted_min_home_steps((0, 1), 6) == 1

    @given(side=st.sampled_from([4, 6, 5, 7]), seed=st.integers(0, 2**31))
    @settings(max_examples=25)
    def test_exact_against_live_run(self, side, seed):
        from repro.core.engine import default_step_cap
        from repro.zeroone.smallest import predicted_min_home_steps

        rng = np.random.default_rng(seed)
        grid = random_permutation_grid(side, rng=rng)
        pred = predicted_min_home_steps(min_cell(grid), side)
        actual = steps_until_min_home(
            "snake_3", grid, max_steps=default_step_cap(side)
        )
        assert pred == actual

    def test_dominates_theorem12_bound(self):
        from repro.core.orders import rank_of_position
        from repro.zeroone.smallest import predicted_min_home_steps

        side = 8
        for r in range(side):
            for c in range(side):
                m = rank_of_position(r, c, side, "snake") + 1
                assert predicted_min_home_steps((r, c), side) >= max(2 * m - 3, 0)


class TestExpectedMinHome:
    """Exact closed form discovered from the deterministic walk:
    E[T_home] = N - 1 exactly at odd side, N - 1 - 1/N at even side."""

    @pytest.mark.parametrize("side", [5, 7, 9, 11])
    def test_odd_side_closed_form(self, side):
        from repro.zeroone.smallest import expected_min_home_steps

        n = side * side
        assert expected_min_home_steps(side) == pytest.approx(n - 1, abs=1e-9)

    @pytest.mark.parametrize("side", [4, 6, 10, 12])
    def test_even_side_closed_form(self, side):
        from repro.zeroone.smallest import expected_min_home_steps

        n = side * side
        assert expected_min_home_steps(side) == pytest.approx(n - 1 - 1 / n, abs=1e-9)
