"""repro.bench: case registry, report schema, regression gating, CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BenchCase,
    build_cases,
    case_names,
    compare_reports,
    environment_fingerprint,
    load_report,
    run_case,
    run_cases,
    validate_report,
    write_report,
)
from repro.bench.__main__ import main as run_bench_cli
from repro.errors import BenchmarkError


def tiny_case(name: str = "tiny", group: str = "unit") -> BenchCase:
    return BenchCase(
        name=name,
        group=group,
        setup=lambda: list(range(100)),
        body=lambda state: sum(state),
        repeats=2,
    )


def tiny_report(**case_kwargs) -> dict:
    report = run_cases([tiny_case(**case_kwargs)], suite="smoke")
    return validate_report(report)


class TestCaseRegistry:
    def test_smoke_suite_covers_required_groups(self):
        cases = build_cases("smoke")
        groups = {case.group for case in cases}
        assert {"driver", "compile", "campaign", "sort", "overhead"} <= groups

    def test_full_suite_scales_sort_sides(self):
        smoke = {c.name for c in build_cases("smoke")}
        full = {c.name for c in build_cases("full")}
        assert "sort_snake_1_side16" in smoke
        assert "sort_snake_1_side64" not in smoke
        assert {"sort_snake_1_side16", "sort_snake_1_side32",
                "sort_snake_1_side64"} <= full

    def test_every_paper_algorithm_present(self):
        from repro.core.algorithms import ALGORITHM_NAMES

        names = set(case_names("smoke"))
        for algorithm in ALGORITHM_NAMES:
            assert f"sort_{algorithm}_side16" in names

    def test_unknown_suite_rejected(self):
        with pytest.raises(BenchmarkError):
            build_cases("nightly")


class TestRunner:
    def test_report_is_schema_valid(self):
        report = tiny_report()
        entry = report["cases"]["tiny"]
        assert entry["repeats"] == 2
        assert entry["wall"]["min"] <= entry["wall"]["mean"] <= entry["wall"]["max"]

    def test_env_fingerprint_fields(self):
        env = environment_fingerprint()
        assert {"python", "platform", "machine", "numpy", "repro"} <= env.keys()

    def test_repeats_override_and_validation(self):
        report = run_cases([tiny_case()], suite="smoke", repeats=4)
        assert report["cases"]["tiny"]["repeats"] == 4
        with pytest.raises(BenchmarkError):
            run_case(tiny_case(), repeats=0)

    def test_sort_case_records_span_breakdown(self):
        (case,) = [c for c in build_cases("smoke") if c.name == "sort_snake_1_side16"]
        entry = run_case(case, repeats=1)
        assert {"run", "compile", "kernel"} <= entry["spans"].keys()

    def test_write_and_load_roundtrip(self, tmp_path):
        report = tiny_report()
        path = tmp_path / "deep" / "BENCH_test.json"
        write_report(report, path)  # creates parent dirs
        assert load_report(path) == report

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda d: d.pop("format"), "format"),
            (lambda d: d.update(schema_version=99), "schema_version"),
            (lambda d: d.pop("cases"), "cases"),
            (lambda d: d["cases"]["tiny"].pop("wall"), "wall"),
        ],
    )
    def test_schema_violations_rejected(self, mutate, message):
        report = tiny_report()
        mutate(report)
        with pytest.raises(BenchmarkError, match=message):
            validate_report(report)

    def test_load_rejects_missing_and_invalid_files(self, tmp_path):
        with pytest.raises(BenchmarkError, match="not found"):
            load_report(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(BenchmarkError, match="not valid JSON"):
            load_report(bad)


def slowed(report: dict, name: str, factor: float) -> dict:
    out = json.loads(json.dumps(report))
    out["cases"][name]["wall"] = {
        k: v * factor for k, v in out["cases"][name]["wall"].items()
    }
    return out


class TestCompare:
    def test_identical_reports_pass(self):
        report = tiny_report()
        comparison = compare_reports(report, report)
        assert comparison.ok
        assert comparison.exit_code() == 0
        assert comparison.env_matches

    def test_injected_slowdown_is_a_regression(self):
        baseline = tiny_report()
        comparison = compare_reports(slowed(baseline, "tiny", 10.0), baseline)
        assert not comparison.ok
        assert comparison.exit_code() == 1
        (finding,) = comparison.regressions
        assert finding.status == "regression"
        assert finding.ratio == pytest.approx(10.0)

    def test_per_case_threshold_overrides_default(self):
        baseline = tiny_report()
        baseline["cases"]["tiny"]["threshold"] = 20.0
        comparison = compare_reports(slowed(baseline, "tiny", 10.0), baseline)
        assert comparison.ok

    def test_missing_case_gates_new_case_does_not(self):
        baseline = tiny_report()
        current = tiny_report(name="renamed")
        comparison = compare_reports(current, baseline)
        statuses = {c.name: c.status for c in comparison.cases}
        assert statuses == {"tiny": "missing", "renamed": "new"}
        assert comparison.exit_code() == 1

    def test_speedup_reported_as_improvement(self):
        baseline = tiny_report()
        comparison = compare_reports(slowed(baseline, "tiny", 0.1), baseline)
        assert comparison.ok
        assert comparison.cases[0].status == "improvement"

    def test_bad_threshold_rejected(self):
        report = tiny_report()
        with pytest.raises(BenchmarkError):
            compare_reports(report, report, default_threshold=0.0)

    def test_render_names_the_verdict(self):
        baseline = tiny_report()
        text = compare_reports(slowed(baseline, "tiny", 10.0), baseline).render()
        assert "regression" in text
        assert "REGRESSIONS" in text


class TestCli:
    def run_tiny(self, tmp_path, *extra: str) -> tuple[int, str]:
        out = tmp_path / "bench.json"
        code = run_bench_cli(
            [
                "--smoke",
                "--cases",
                "compile_cache_hit",
                "--repeats",
                "1",
                "--quiet",
                "--json-out",
                str(out),
                *extra,
            ]
        )
        return code, str(out)

    def test_list_exits_zero(self, capsys):
        assert run_bench_cli(["--list"]) == 0
        assert "driver_steps_side16" in capsys.readouterr().out

    def test_run_writes_valid_report(self, tmp_path):
        code, out = self.run_tiny(tmp_path)
        assert code == 0
        assert "compile_cache_hit" in load_report(out)["cases"]

    def test_json_out_creates_parent_dirs(self, tmp_path):
        nested = tmp_path / "a" / "b" / "bench.json"
        code = run_bench_cli(
            ["--cases", "compile_cache_hit", "--repeats", "1", "--quiet",
             "--json-out", str(nested)]
        )
        assert code == 0 and nested.exists()

    def test_compare_gate_failure_exit_1(self, tmp_path, capsys):
        code, out = self.run_tiny(tmp_path)
        assert code == 0
        current = load_report(out)
        slow = slowed(current, "compile_cache_hit", 1000.0)
        slow_path = tmp_path / "slow.json"
        slow_path.write_text(json.dumps(slow))
        code = run_bench_cli(
            ["--compare", str(out), "--against", str(slow_path)]
        )
        assert code == 1
        assert "regression" in capsys.readouterr().out

    def test_compare_ok_exit_0(self, tmp_path):
        code, out = self.run_tiny(tmp_path)
        assert run_bench_cli(["--compare", out, "--against", out]) == 0

    def test_usage_errors_exit_2(self, tmp_path, capsys):
        assert run_bench_cli(["--against", "x.json"]) == 2
        assert run_bench_cli(["--compare", str(tmp_path / "missing.json"),
                           "--against", str(tmp_path / "missing.json")]) == 2
        assert run_bench_cli(["--cases", "no_such_case", "--quiet",
                           "--json-out", str(tmp_path / "b.json")]) == 2
        capsys.readouterr()

    def test_repro_cli_dispatches_bench(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["bench", "--list"]) == 0
        assert "span_overhead_disabled" in capsys.readouterr().out


class TestCommittedBaseline:
    def test_baseline_smoke_is_schema_valid_and_covers_suite(self):
        baseline = load_report("benchmarks/results/baseline-smoke.json")
        assert baseline["suite"] == "smoke"
        expected = set(case_names("smoke"))
        assert set(baseline["cases"]) == expected
        # CI baselines must carry generous explicit thresholds: shared
        # runners are noisy and the gate should only catch real cliffs.
        for name, entry in baseline["cases"].items():
            assert entry.get("threshold", 0) >= 3.0, name
