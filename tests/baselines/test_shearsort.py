"""Tests for the shearsort baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.schedules import build_shearsort, shearsort_step_count
from repro.core.engine import run_fixed_steps, run_until_sorted
from repro.core.orders import is_sorted_grid, target_grid
from repro.errors import DimensionError
from repro.randomness import random_permutation_grid


class TestShearsortCorrectness:
    @pytest.mark.parametrize("side", [2, 4, 7, 8, 16])
    def test_sorts_within_schedule_length(self, side, rng):
        grids = random_permutation_grid(side, batch=10, rng=rng)
        out = run_until_sorted(build_shearsort(side=side), grids, max_steps=shearsort_step_count(side))
        assert out.all_completed
        assert is_sorted_grid(out.final, "snake").all()

    def test_exhaustive_zero_one_4x4(self):
        grids = ((np.arange(65536)[:, None] >> np.arange(16)) & 1).astype(np.int8).reshape(-1, 4, 4)
        out = run_until_sorted(build_shearsort(side=4), grids, max_steps=shearsort_step_count(4))
        assert out.all_completed

    def test_sorted_is_fixed_point(self):
        side = 6
        tgt = target_grid(np.arange(side * side), side, "snake")
        after = run_fixed_steps(build_shearsort(side=side), tgt, shearsort_step_count(side))
        np.testing.assert_array_equal(after, tgt)


class TestShearsortComplexity:
    def test_step_count_formula(self):
        # side 8: phases = log2(8)+1 = 4 -> (2*4-1)*8 = 56
        assert shearsort_step_count(8) == 56

    def test_asymptotically_beats_bubble_sorts(self, rng):
        """For side 16 the schedule is ~sqrt(N) log N = 144 steps, well under
        the ~N = 256 the bubble sorts need on average."""
        side = 16
        assert shearsort_step_count(side) < side * side

    def test_scaling_is_subquadratic(self):
        # step count grows like side*log(side), not side^2
        ratio = shearsort_step_count(32) / shearsort_step_count(8)
        assert ratio < (32 / 8) ** 2 / 2

    def test_rejects_tiny(self):
        with pytest.raises(DimensionError):
            build_shearsort(side=1)
        with pytest.raises(DimensionError):
            shearsort_step_count(1)

    def test_schedule_metadata(self):
        schedule = build_shearsort(side=8)
        assert schedule.order == "snake"
        assert not schedule.uses_wraparound
        assert schedule.metadata["family"] == "shearsort"
