"""Tests for the broken no-wrap baseline and the adversarial input."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.no_wrap import smallest_column_adversary
from repro.schedules import build_row_major_no_wrap
from repro.core.engine import run_fixed_steps, run_until_sorted
from repro.core.runner import sort_grid
from repro.errors import DimensionError
from repro.zeroone.threshold import threshold_matrix
from repro.zeroone.weights import column_zeros


class TestAdversary:
    def test_smallest_values_in_column(self):
        grid = smallest_column_adversary(6)
        assert set(grid[:, 0].tolist()) == set(range(6))
        assert sorted(grid.ravel().tolist()) == list(range(36))

    def test_other_column(self):
        grid = smallest_column_adversary(6, column=3)
        assert set(grid[:, 3].tolist()) == set(range(6))

    def test_bad_args(self):
        with pytest.raises(DimensionError):
            smallest_column_adversary(1)
        with pytest.raises(DimensionError):
            smallest_column_adversary(4, column=4)


class TestNoWrapNeverSorts:
    def test_column_weights_invariant(self):
        """Without wrap wires, no value crosses the column-1 boundary:
        the zero count of each column is preserved by every step."""
        side = 6
        adversary = smallest_column_adversary(side)
        zero_one = threshold_matrix(adversary, side)
        schedule = build_row_major_no_wrap()
        zeros_before = column_zeros(zero_one)
        after = run_fixed_steps(schedule, zero_one, 8 * side)
        np.testing.assert_array_equal(column_zeros(after), zeros_before)

    def test_never_completes(self):
        side = 6
        adversary = smallest_column_adversary(side)
        out = run_until_sorted(build_row_major_no_wrap(), adversary, max_steps=4 * side * side)
        assert not out.all_completed

    def test_wired_version_completes_same_input(self):
        side = 6
        adversary = smallest_column_adversary(side)
        report = sort_grid("row_major_row_first", adversary)
        assert report.outcome.all_completed

    def test_random_inputs_can_still_fail(self):
        """The no-wrap schedule is not a sorting network — Section 1's
        argument applies to the adversary; generic inputs may or may not
        sort, but the schedule carries no wrap ops at all."""
        schedule = build_row_major_no_wrap()
        assert not schedule.uses_wraparound
        assert schedule.requires_even_side
