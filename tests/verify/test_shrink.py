"""Shrinker: minimizes failing grids while preserving the failure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.verify.inputs import generate_cases, reversed_grid, sorted_target
from repro.verify.shrink import shrink_case, shrink_entries


def _top_left_wrong(grid: np.ndarray) -> bool:
    """Toy property failure: the minimum is not in the top-left cell."""
    return int(grid[0, 0]) != int(grid.min())


class TestShrinkEntries:
    def test_result_still_fails(self):
        start = reversed_grid(6, "row_major")
        result = shrink_entries(_top_left_wrong, start)
        assert _top_left_wrong(result.grid)
        assert result.side == 6

    def test_distance_shrinks_monotonically(self):
        start = reversed_grid(6, "row_major")
        target = sorted_target(6, "row_major")
        result = shrink_entries(_top_left_wrong, start)
        assert result.distance <= int(np.sum(start != target))
        # 1-minimal for this property: only the misplaced minimum (and the
        # cell holding its value) remain wrong.
        assert result.distance == 2

    def test_values_multiset_preserved(self):
        start = reversed_grid(6, "snake")
        result = shrink_entries(_top_left_wrong, start, order="snake")
        assert sorted(result.grid.reshape(-1)) == sorted(start.reshape(-1))

    def test_zero_one_grids_terminate(self):
        """Donor selection must strictly reduce distance on 0-1 grids."""
        grid = np.zeros((4, 4), dtype=np.int8)
        grid[0, :] = 1  # ones on top: maximally unsorted rows-of-ones

        def fails(g):
            return int(g[0, 0]) == 1

        result = shrink_entries(fails, grid, max_evaluations=500)
        assert fails(result.grid)
        assert result.evaluations < 500

    def test_budget_is_respected(self):
        start = reversed_grid(8, "row_major")
        result = shrink_entries(_top_left_wrong, start, max_evaluations=5)
        assert result.evaluations <= 5
        assert _top_left_wrong(result.grid)

    def test_passing_grid_rejected(self):
        with pytest.raises(DimensionError):
            shrink_entries(_top_left_wrong, sorted_target(4, "row_major"))

    def test_batched_grid_rejected(self):
        with pytest.raises(DimensionError):
            shrink_entries(_top_left_wrong, np.zeros((2, 4, 4), dtype=np.int64))


class TestShrinkCase:
    def test_side_phase_finds_smaller_reproducer(self):
        start = reversed_grid(8, "row_major")

        def candidates(side):
            return [reversed_grid(side, "row_major")]

        result = shrink_case(
            _top_left_wrong, start, candidates_for_side=candidates, sides=(4, 6)
        )
        assert result.side == 4
        assert result.side_shrunk
        assert _top_left_wrong(result.grid)

    def test_without_candidates_only_entries_shrink(self):
        start = reversed_grid(6, "row_major")
        result = shrink_case(_top_left_wrong, start)
        assert result.side == 6
        assert not result.side_shrunk

    def test_generated_cases_work_as_candidates(self):
        start = reversed_grid(8, "snake")

        def candidates(side):
            return [
                np.asarray(c.grid)
                for c in generate_cases(side, "snake", seed=0)
                if c.family in ("permutation", "adversarial")
            ]

        result = shrink_case(
            _top_left_wrong, start, order="snake",
            candidates_for_side=candidates, sides=(4,),
        )
        assert result.side == 4
        assert _top_left_wrong(result.grid)

    def test_describe_mentions_side_and_cost(self):
        result = shrink_case(_top_left_wrong, reversed_grid(4, "row_major"))
        text = result.describe()
        assert "side=4" in text and "evaluations" in text
