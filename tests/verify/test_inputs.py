"""Deterministic input generation for the verification harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.randomness import paper_zero_count
from repro.verify.inputs import generate_cases, reversed_grid, sorted_target


def _grids_by_name(cases):
    return {c.name: np.asarray(c.grid) for c in cases}


class TestDeterminism:
    def test_same_seed_same_cases(self):
        a = _grids_by_name(generate_cases(6, "row_major", seed=3))
        b = _grids_by_name(generate_cases(6, "row_major", seed=3))
        assert a.keys() == b.keys()
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])

    def test_different_seed_different_random_cases(self):
        a = _grids_by_name(generate_cases(6, "row_major", seed=0))
        b = _grids_by_name(generate_cases(6, "row_major", seed=1))
        assert not np.array_equal(a["perm-0"], b["perm-0"])

    def test_families_draw_independent_streams(self):
        """Growing one family must not shift another family's draws."""
        small = _grids_by_name(generate_cases(6, "snake", seed=0, permutations=1))
        large = _grids_by_name(generate_cases(6, "snake", seed=0, permutations=4))
        np.testing.assert_array_equal(small["zero-one-0"], large["zero-one-0"])
        np.testing.assert_array_equal(small["near-sorted-0"], large["near-sorted-0"])
        np.testing.assert_array_equal(small["perm-0"], large["perm-0"])


class TestFamilies:
    @pytest.mark.parametrize("order", ["row_major", "snake"])
    def test_permutation_cases_are_permutations(self, order):
        for case in generate_cases(6, order, seed=0):
            if case.family in ("permutation", "near_sorted"):
                values = sorted(np.asarray(case.grid).reshape(-1).tolist())
                assert values == list(range(36)), case.name

    def test_zero_one_cases_use_paper_zero_count(self):
        for case in generate_cases(6, "row_major", seed=0):
            grid = np.asarray(case.grid)
            if case.family == "zero_one" or case.name in ("checkerboard", "anti-block"):
                assert set(np.unique(grid).tolist()) <= {0, 1}, case.name
                assert int(np.sum(grid == 0)) == paper_zero_count(6), case.name

    def test_case_names_unique(self):
        names = [c.name for c in generate_cases(8, "snake", seed=0)]
        assert len(names) == len(set(names))

    def test_checkerboard_only_on_even_sides(self):
        names = {c.name for c in generate_cases(5, "snake", seed=0)}
        assert "checkerboard" not in names
        names = {c.name for c in generate_cases(6, "snake", seed=0)}
        assert "checkerboard" in names

    def test_counts_control_family_sizes(self):
        cases = generate_cases(
            6, "row_major", seed=0, permutations=3, zero_ones=0, near_sorted=1,
            adversarial=False,
        )
        families = [c.family for c in cases]
        assert families.count("permutation") == 3
        assert families.count("zero_one") == 0
        assert families.count("near_sorted") == 1
        assert families.count("adversarial") == 0


class TestStructuredGrids:
    def test_sorted_target_is_sorted(self):
        from repro.core.orders import is_sorted_grid

        for order in ("row_major", "snake"):
            assert bool(is_sorted_grid(sorted_target(6, order), order))

    def test_reversed_grid_reverses_ranks(self):
        rev = reversed_grid(4, "row_major")
        assert rev[0, 0] == 15
        assert rev[-1, -1] == 0

    def test_side_below_two_rejected(self):
        with pytest.raises(DimensionError):
            generate_cases(1, "row_major")
