"""Regression corpus: serialization, replay, and the shrinker demo.

The committed corpus under ``tests/verify/corpus/`` was produced by the
end-to-end story this file also re-enacts: inject a schedule fault
(``flip-direction`` on snake_1's first step), catch it with the 0-1
threshold-consistency property, shrink the failing side-8 permutation to a
side-4 reproducer, and save it.  Replay asserts the property holds on the
*current* (unmutated) code; the fault-reinjection test asserts the tiny
committed grid still catches the original bug.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.algorithms import get_algorithm
from repro.errors import DimensionError
from repro.verify.corpus import (
    Reproducer,
    load_corpus,
    replay_reproducer,
    save_reproducer,
)
from repro.verify.inputs import generate_cases
from repro.verify.metamorphic import check_threshold_consistency
from repro.verify.mutations import mutate_schedule
from repro.verify.shrink import shrink_case

CORPUS_DIR = Path(__file__).parent / "corpus"


class TestReproducer:
    def test_unknown_property_rejected(self):
        with pytest.raises(DimensionError):
            Reproducer(prop="nonsense", algorithm="snake_1", grid=[[0, 1], [2, 3]])

    def test_non_square_grid_rejected(self):
        with pytest.raises(DimensionError):
            Reproducer(prop="differential", algorithm="snake_1", grid=[[0, 1, 2]])

    def test_save_load_round_trip(self, tmp_path):
        rep = Reproducer(
            prop="differential",
            algorithm="snake_3",
            grid=[[3, 2], [1, 0]],
            detail="steps: mesh vs vectorized",
            source="unit test",
        )
        path = save_reproducer(tmp_path, rep)
        assert path.exists()
        loaded = load_corpus(tmp_path)
        assert len(loaded) == 1
        assert loaded[0] == rep

    def test_saving_twice_is_idempotent(self, tmp_path):
        rep = Reproducer(prop="differential", algorithm="snake_1",
                         grid=[[1, 0], [3, 2]])
        first = save_reproducer(tmp_path, rep)
        second = save_reproducer(tmp_path, rep)
        assert first == second
        assert len(load_corpus(tmp_path)) == 1

    def test_missing_directory_loads_empty(self, tmp_path):
        assert load_corpus(tmp_path / "nowhere") == []


class TestCommittedCorpus:
    def test_corpus_is_nonempty_and_small(self):
        entries = load_corpus(CORPUS_DIR)
        assert entries, "committed corpus must not be empty"
        assert all(e.side <= 6 for e in entries), "corpus entries must be minimal"

    def test_every_entry_replays_clean(self):
        for entry in load_corpus(CORPUS_DIR):
            violations = replay_reproducer(entry)
            assert violations == [], (
                f"{entry.prop}/{entry.algorithm} regressed: {violations}"
            )

    def test_committed_grid_still_catches_the_original_fault(self):
        """Re-inject the fault each entry was shrunk from; the minimized
        grid must still expose it."""
        entries = [
            e for e in load_corpus(CORPUS_DIR)
            if e.prop == "threshold_consistency" and "flip-direction@1" in e.detail
        ]
        assert entries, "the flip-direction snake_1 reproducer must stay committed"
        for entry in entries:
            mutant = mutate_schedule(get_algorithm(entry.algorithm),
                                     "flip-direction", 0)
            violations = check_threshold_consistency(
                mutant, entry.array, max_steps=200
            )
            assert violations, "the shrunk grid no longer catches the fault"


class TestShrinkerDemo:
    """The acceptance-criterion story, end to end."""

    def test_injected_fault_shrinks_to_minimal_reproducer(self, tmp_path):
        schedule = get_algorithm("snake_1")
        mutant = mutate_schedule(schedule, "flip-direction", 0)

        def fails(grid):
            return bool(check_threshold_consistency(mutant, grid, max_steps=200))

        start = next(
            c for c in generate_cases(8, schedule.order, seed=0, permutations=3,
                                      zero_ones=0, near_sorted=0, adversarial=False)
            if fails(c.grid)
        )

        def candidates(side):
            for case in generate_cases(side, schedule.order, seed=0, permutations=3,
                                       zero_ones=0, near_sorted=2):
                grid = np.asarray(case.grid)
                if len(np.unique(grid)) == grid.size:
                    yield grid

        result = shrink_case(fails, start.grid, order=schedule.order,
                             candidates_for_side=candidates, sides=(4, 6),
                             max_evaluations=400)
        assert result.side <= 6, "shrinker must reach a side <= 6 reproducer"
        assert fails(result.grid)

        rep = Reproducer(
            prop="threshold_consistency",
            algorithm="snake_1",
            grid=result.grid.tolist(),
            detail="under mutation flip-direction@1: "
            + check_threshold_consistency(mutant, result.grid, max_steps=200)[0],
            source=f"shrunk from {start.name} side=8 seed=0 ({result.describe()})",
        )
        path = save_reproducer(tmp_path, rep)
        # Content-addressed filename: the deterministic pipeline reproduces
        # the committed corpus entry bit for bit.
        assert (CORPUS_DIR / path.name).exists(), (
            f"regenerated reproducer {path.name} does not match the committed corpus"
        )
        assert replay_reproducer(rep) == []
