"""Metamorphic properties: hold on the real algorithms, fail on mutants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import run_sort
from repro.core.algorithms import ALGORITHM_NAMES, get_algorithm
from repro.errors import DimensionError, ScheduleValidationError
from repro.obs.context import no_observer
from repro.verify.inputs import generate_cases
from repro.verify.metamorphic import (
    InvariantObserver,
    check_relabeling_invariance,
    check_threshold_consistency,
    monotone_relabelings,
    run_with_invariants,
)
from repro.verify.mutations import all_mutants


def _permutation(side: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).permutation(side * side).reshape(side, side)


def _sides_for(algorithm: str) -> list[int]:
    even_only = get_algorithm(algorithm).requires_even_side
    return [4, 6, 8] if even_only else [4, 5, 6, 7, 8]


class TestThresholdConsistency:
    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    def test_full_sweep_exact_equality(self, algorithm):
        """The 0-1 principle's equality: slowest threshold == permutation."""
        for side in (4, 6):
            violations = check_threshold_consistency(
                algorithm, _permutation(side, seed=side)
            )
            assert violations == [], violations

    @given(data=st.data())
    @settings(max_examples=15)
    def test_property_on_random_permutations(self, data):
        algorithm = data.draw(st.sampled_from(ALGORITHM_NAMES))
        side = data.draw(st.sampled_from(_sides_for(algorithm)))
        seed = data.draw(st.integers(0, 2**31))
        grid = _permutation(side, seed)
        zs = sorted({1, side, (side * side) // 2, side * side - 1})
        violations = check_threshold_consistency(algorithm, grid, thresholds=zs)
        assert violations == [], violations

    def test_duplicate_entries_rejected(self):
        with pytest.raises(DimensionError):
            check_threshold_consistency("snake_1", np.zeros((4, 4), dtype=np.int64))

    def test_out_of_range_threshold_rejected(self):
        with pytest.raises(DimensionError):
            check_threshold_consistency(
                "snake_1", _permutation(4, 0), thresholds=[16]
            )


class TestRelabelingInvariance:
    @given(data=st.data())
    @settings(max_examples=15)
    def test_property_on_random_permutations(self, data):
        algorithm = data.draw(st.sampled_from(ALGORITHM_NAMES))
        side = data.draw(st.sampled_from(_sides_for(algorithm)))
        seed = data.draw(st.integers(0, 2**31))
        violations = check_relabeling_invariance(algorithm, _permutation(side, seed))
        assert violations == [], violations

    def test_relabelings_are_strictly_increasing(self):
        for name, fn in monotone_relabelings(36, seed=5):
            values = fn(np.arange(36))
            assert np.all(np.diff(values) > 0), name

    def test_non_rank_grid_rejected(self):
        with pytest.raises(DimensionError):
            check_relabeling_invariance("snake_1", np.full((4, 4), 7))


class TestInvariantObserver:
    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    def test_no_violations_on_real_algorithms(self, algorithm):
        for case in generate_cases(6, get_algorithm(algorithm).order, seed=1):
            grid = np.asarray(case.grid)
            if set(np.unique(grid).tolist()) <= {0, 1}:
                assert run_with_invariants(algorithm, grid) == []

    def test_row_major_phases_are_checked(self):
        cases = generate_cases(6, "row_major", seed=0, permutations=0,
                               near_sorted=0, adversarial=False)
        grid = np.asarray(cases[0].grid)  # zero-one-0
        observer = InvariantObserver(initial_grid=grid)
        run_sort("vectorized", get_algorithm("row_major_row_first"), grid,
                 observer=observer)
        assert observer.checked_steps > 0
        assert observer.completed_runs == 1
        assert observer.violations == []

    def test_non_zero_one_runs_are_skipped(self):
        grid = _permutation(6, 0)
        observer = InvariantObserver(initial_grid=grid)
        run_sort("vectorized", get_algorithm("snake_1"), grid, observer=observer)
        assert observer.checked_steps == 0
        assert observer.violations == []

    def test_backend_without_step_grids_is_skipped(self):
        grids = generate_cases(6, "snake", seed=0, permutations=0,
                               near_sorted=0, adversarial=False)
        grid = np.asarray(grids[0].grid)
        observer = InvariantObserver(initial_grid=grid)
        run_sort("mesh", get_algorithm("snake_1"), grid, observer=observer)
        assert observer.violations == []

    def test_non_zero_one_input_rejected_by_wrapper(self):
        with pytest.raises(DimensionError):
            run_with_invariants("snake_1", _permutation(4, 0))


class TestMutantsAreCaught:
    """Harness self-test: every minimal schedule corruption is detected."""

    @staticmethod
    def _behaviour(schedule, grid):
        with no_observer():
            outcome = run_sort("vectorized", schedule, grid, max_steps=400)
        return (
            int(np.asarray(outcome.steps)),
            bool(np.all(outcome.completed)),
            np.asarray(outcome.final).tobytes(),
        )

    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    def test_every_mutant_detected(self, algorithm):
        schedule = get_algorithm(algorithm)
        cases = generate_cases(6, schedule.order, seed=0)
        uncaught = []
        for label, mutant in all_mutants(schedule):
            try:
                caught = any(
                    self._behaviour(mutant, c.grid) != self._behaviour(schedule, c.grid)
                    for c in cases
                )
            except ScheduleValidationError:
                continue  # the schedule validator caught it outright
            if not caught:
                caught = any(
                    bool(run_with_invariants(mutant, np.asarray(c.grid)))
                    for c in cases
                    if set(np.unique(np.asarray(c.grid)).tolist()) <= {0, 1}
                )
            if not caught:
                uncaught.append(label)
        assert uncaught == [], f"{algorithm}: mutants escaped detection: {uncaught}"
