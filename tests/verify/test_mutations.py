"""Schedule mutation operators: structural sanity."""

from __future__ import annotations

import pytest

from repro.core.algorithms import ALGORITHM_NAMES, get_algorithm
from repro.errors import DimensionError
from repro.verify.mutations import MUTATIONS, all_mutants, mutate_schedule


class TestMutateSchedule:
    def test_unknown_mutation_rejected(self):
        with pytest.raises(DimensionError):
            mutate_schedule(get_algorithm("snake_1"), "sabotage")

    def test_step_index_out_of_range_rejected(self):
        with pytest.raises(DimensionError):
            mutate_schedule(get_algorithm("snake_1"), "flip-direction", 99)

    def test_original_schedule_is_untouched(self):
        schedule = get_algorithm("snake_1")
        before = schedule.steps
        mutate_schedule(schedule, "flip-direction", 0)
        assert schedule.steps == before

    def test_mutant_keeps_registry_name(self):
        mutant = mutate_schedule(get_algorithm("snake_2"), "swap-steps", 0)
        assert mutant.name == "snake_2"

    def test_drop_op_on_single_op_step_rejected(self):
        schedule = get_algorithm("snake_1")
        single_op_steps = [
            i for i, step in enumerate(schedule.steps) if len(step.ops) == 1
        ]
        if not single_op_steps:
            pytest.skip("snake_1 has no single-op steps")
        with pytest.raises(DimensionError):
            mutate_schedule(schedule, "drop-op", single_op_steps[0])


class TestAllMutants:
    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    def test_mutants_differ_from_original(self, algorithm):
        schedule = get_algorithm(algorithm)
        mutants = all_mutants(schedule)
        assert mutants, "every schedule must admit at least one mutant"
        labels = [label for label, _ in mutants]
        assert len(labels) == len(set(labels))
        for label, mutant in mutants:
            assert mutant.steps != schedule.steps, label
            name = label.split("@")[0]
            assert name in MUTATIONS
