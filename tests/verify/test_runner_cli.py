"""The verify orchestrator, its metrics, the CLI, and the E-VERIFY entry."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.orders import is_sorted_grid
from repro.errors import DimensionError
from repro.obs.manifest import load_manifest
from repro.obs.metrics import MetricsRegistry
from repro.verify import runner as runner_mod
from repro.verify.differential import DifferentialReport, Mismatch
from repro.verify.runner import BUDGETS, VerifyConfig, run_verify

CORPUS_DIR = Path(__file__).parent / "corpus"

_SMALL = dict(algorithms=("snake_1",), backends=("vectorized", "reference"))


class TestVerifyConfig:
    def test_bad_budget_rejected(self):
        with pytest.raises(DimensionError):
            VerifyConfig(budget="enormous")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(DimensionError):
            VerifyConfig(algorithms=("quicksort",))

    def test_unknown_backend_rejected(self):
        with pytest.raises(DimensionError):
            VerifyConfig(backends=("gpu",))

    def test_even_side_requirement_filters_sides(self):
        config = VerifyConfig(budget="deep")
        assert 5 in config.sides_for("snake_1")
        assert all(s % 2 == 0 for s in config.sides_for("row_major_row_first"))
        assert set(BUDGETS["deep"]["sides"]) >= set(config.sides_for("snake_1"))


class TestRunVerify:
    def test_smoke_sweep_passes_and_counts_metrics(self):
        registry = MetricsRegistry()
        report = run_verify(VerifyConfig(**_SMALL), registry=registry)
        assert report.ok, report.summary()
        assert report.records
        assert registry["repro_verify_checks_total"].value == len(report.records)
        assert registry["repro_verify_violations_total"].value == 0
        assert registry["repro_verify_seconds"].count == 1
        props = {r.prop for r in report.records}
        assert props == {
            "static_schedule",
            "differential",
            "threshold_consistency",
            "relabeling_invariance",
            "lemma_invariants",
        }

    def test_corpus_entries_are_replayed(self):
        report = run_verify(VerifyConfig(**_SMALL, corpus_dir=CORPUS_DIR))
        assert report.corpus_entries == len(list(CORPUS_DIR.glob("*.json")))
        assert any(r.prop.startswith("corpus:") for r in report.records)
        assert report.ok, report.summary()

    def test_summary_and_table_agree(self):
        report = run_verify(VerifyConfig(**_SMALL))
        assert "PASS" in report.summary()
        table = report.to_table()
        assert sum(row[1] for row in table.rows) == len(report.records)
        assert sum(row[2] for row in table.rows) == 0

    def test_failures_are_shrunk_and_saved(self, tmp_path, monkeypatch):
        """A planted differential bug is minimized and serialized."""

        def fake_differential(algorithm, grid, *, backends=None, **kwargs):
            grid = np.asarray(grid)
            name = algorithm if isinstance(algorithm, str) else algorithm.name
            report = DifferentialReport(
                algorithm=name, side=int(grid.shape[0]),
                backends=tuple(backends or ()),
            )
            if not bool(np.all(is_sorted_grid(grid, "snake"))):
                report.mismatches.append(
                    Mismatch("steps", "reference", "vectorized", detail="planted")
                )
            return report

        monkeypatch.setattr(runner_mod, "differential_run", fake_differential)
        registry = MetricsRegistry()
        report = run_verify(
            VerifyConfig(**_SMALL, failure_dir=tmp_path), registry=registry
        )
        failures = [r for r in report.records if r.prop == "differential" and not r.ok]
        assert failures
        assert registry["repro_verify_counterexamples_total"].value > 0
        shrunk = [r for r in failures if r.shrunk]
        assert shrunk, "failures must be minimized"
        saved = list(tmp_path.glob("differential-*.json"))
        assert saved, "counterexamples must be serialized"
        assert any(r.saved_to for r in failures)


class TestCli:
    def test_smoke_cli_exits_zero(self, tmp_path):
        from repro.verify.__main__ import main

        manifest_path = tmp_path / "manifest.json"
        metrics_path = tmp_path / "metrics.json"
        rc = main([
            "--smoke", "--algorithms", "snake_1",
            "--backends", "vectorized", "reference",
            "--manifest", str(manifest_path),
            "--metrics-out", str(metrics_path),
        ])
        assert rc == 0
        manifest = load_manifest(manifest_path)
        assert manifest.kind == "verify"
        assert manifest.exp_id == "E-VERIFY"
        assert manifest.extra["failures"] == 0
        assert manifest.extra["checks"] > 0
        metrics = json.loads(metrics_path.read_text())
        assert "repro_verify_checks_total" in metrics

    def test_bad_backend_is_usage_error(self):
        from repro.verify.__main__ import main

        assert main(["--smoke", "--backends", "gpu"]) == 2

    def test_metrics_out_creates_missing_parent_dirs(self, tmp_path):
        from repro.verify.__main__ import main

        out = tmp_path / "does" / "not" / "exist" / "metrics.json"
        rc = main([
            "--smoke", "--algorithms", "snake_1", "--backends", "vectorized",
            "--corpus", "", "--metrics-out", str(out),
        ])
        assert rc == 0
        assert "repro_verify_checks_total" in json.loads(out.read_text())

    def test_metrics_out_unwritable_path_fails_fast(self, tmp_path, capsys):
        from repro.verify.__main__ import main

        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        rc = main([
            "--smoke", "--algorithms", "snake_1", "--backends", "vectorized",
            "--corpus", "", "--metrics-out", str(blocker / "m.json"),
        ])
        assert rc == 2
        assert "not writable" in capsys.readouterr().err

    def test_prometheus_metrics_output(self, tmp_path):
        from repro.verify.__main__ import main

        out = tmp_path / "metrics.prom"
        rc = main([
            "--smoke", "--algorithms", "snake_1", "--backends", "vectorized",
            "--corpus", "", "--metrics-out", str(out),
        ])
        assert rc == 0
        assert "repro_verify_checks_total" in out.read_text()

    def test_repro_command_dispatches(self):
        from repro.cli import main

        rc = main(["verify", "--smoke", "--algorithms", "snake_1",
                   "--backends", "vectorized", "--corpus", "", "--quiet"])
        assert rc == 0
        assert main(["no-such-subcommand"]) == 2
        assert main(["--help"]) == 0


class TestExperimentEntry:
    def test_e_verify_is_registered(self):
        from repro.experiments.registry import EXPERIMENTS

        assert "E-VERIFY" in EXPERIMENTS

    def test_exp_verify_runs_at_quick_scale(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.registry import run_experiment

        table = run_experiment("E-VERIFY", ExperimentConfig(scale="quick"))
        assert "E-VERIFY" in table.title
        assert sum(row[2] for row in table.rows) == 0
