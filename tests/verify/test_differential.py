"""Differential runner: real backends agree, a planted bug is caught."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import available_backends
from repro.backends.base import Backend
from repro.backends.registry import _FACTORIES, _INSTANCES, register_backend
from repro.core.algorithms import ALGORITHM_NAMES
from repro.errors import DimensionError
from repro.verify.differential import differential_run
from repro.verify.inputs import generate_cases
from repro.verify.mutations import mutate_schedule


class _MutantBackend(Backend):
    """Delegates to the vectorized kernels but runs a corrupted schedule —
    the 'one backend carries a transcription bug' scenario."""

    name = "mutant-test"
    event_executor = "mutant-test"
    supports_batch = True

    def __init__(self) -> None:
        from repro.backends.vectorized import VectorizedBackend

        self._inner = VectorizedBackend()

    def prepare(self, schedule, grid):
        return self._inner.prepare(
            mutate_schedule(schedule, "flip-direction", 0), grid
        )


@pytest.fixture
def mutant_backend():
    register_backend("mutant-test", _MutantBackend)
    try:
        yield "mutant-test"
    finally:
        _FACTORIES.pop("mutant-test", None)
        _INSTANCES.pop("mutant-test", None)


class TestAgreement:
    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    def test_all_backends_agree(self, algorithm):
        rng = np.random.default_rng(7)
        grid = rng.permutation(36).reshape(6, 6)
        report = differential_run(algorithm, grid)
        assert report.ok, report.describe()
        assert set(report.steps) == set(available_backends())
        assert len(set(report.steps.values())) == 1

    def test_presorted_grid_agrees(self):
        cases = generate_cases(4, "snake", seed=0, permutations=0, zero_ones=0,
                               near_sorted=0)
        # the 'reversed' adversarial case plus a literally sorted grid
        from repro.verify.inputs import sorted_target

        report = differential_run("snake_1", sorted_target(4, "snake"))
        assert report.ok
        assert all(steps == 0 for steps in report.steps.values())
        assert cases  # adversarial family always present

    def test_reference_added_when_missing(self):
        grid = np.random.default_rng(0).permutation(16).reshape(4, 4)
        report = differential_run("snake_1", grid, backends=("mesh",),
                                  reference="vectorized")
        assert set(report.backends) == {"vectorized", "mesh"}
        assert report.ok, report.describe()


class TestDetection:
    def test_planted_bug_is_caught(self, mutant_backend):
        grid = np.random.default_rng(3).permutation(36).reshape(6, 6)
        report = differential_run(
            "snake_1", grid, backends=("vectorized", mutant_backend)
        )
        assert not report.ok
        kinds = {m.kind for m in report.mismatches}
        assert kinds & {"trajectory", "steps", "final", "completion"}
        assert any(m.backend == mutant_backend for m in report.mismatches)
        assert mutant_backend in report.describe()

    def test_trajectory_mismatch_reports_first_divergence(self, mutant_backend):
        grid = np.random.default_rng(3).permutation(36).reshape(6, 6)
        report = differential_run(
            "snake_1", grid, backends=("vectorized", mutant_backend)
        )
        trajectory = [m for m in report.mismatches if m.kind == "trajectory"]
        assert trajectory and trajectory[0].t is not None
        assert trajectory[0].t >= 1
        assert "differing cell" in trajectory[0].detail


class TestValidation:
    def test_non_square_grid_rejected(self):
        with pytest.raises(DimensionError):
            differential_run("snake_1", np.zeros((4, 6), dtype=np.int64))

    def test_batched_grid_rejected(self):
        with pytest.raises(DimensionError):
            differential_run("snake_1", np.zeros((2, 4, 4), dtype=np.int64))

    def test_empty_backend_list_rejected(self):
        grid = np.arange(16).reshape(4, 4)
        with pytest.raises(DimensionError):
            differential_run("snake_1", grid, backends=(), reference=None)
