"""Regression tests for the facade error-contract and cache-accounting fixes.

Three bugs fixed alongside the verification harness:

1. ``repro.experiments.sample()`` validated its request lazily (and
   differently) per execution mode — now both modes fail fast with
   :class:`DimensionError` before any work happens;
2. ``SampleResult.meta["seed"]`` silently recorded ``None`` for
   ``SeedSequence``/``Generator`` seeds — now provenance is recorded;
3. concurrent ``compiled_schedule`` callers could compile the same key
   twice and double-count ``_misses`` — now exactly one caller compiles
   while the rest wait.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

import repro.backends.compile as compile_mod
from repro.core.algorithms import get_algorithm
from repro.errors import DimensionError
from repro.experiments import sample
from repro.experiments.montecarlo import SMALL_SAMPLE_COUNT, summarize
from repro.randomness import seed_provenance


class TestSampleValidation:
    """Bug 1: one error contract for both execution modes."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_bad_kind_rejected_up_front(self, workers):
        with pytest.raises(DimensionError, match="kind"):
            sample("snake_1", side=4, trials=4, kind="step-count", workers=workers)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_statistic_kind_requires_callable(self, workers):
        with pytest.raises(DimensionError, match="statistic"):
            sample("snake_1", side=4, trials=4, kind="statistic", workers=workers)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_sort_steps_takes_no_statistic(self, workers):
        with pytest.raises(DimensionError, match="no statistic"):
            sample("snake_1", side=4, trials=4, kind="sort_steps",
                   statistic=lambda g: 0, workers=workers)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_nonpositive_trials_rejected(self, workers):
        with pytest.raises(DimensionError, match="trials"):
            sample("snake_1", side=4, trials=0, workers=workers)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_bad_input_kind_rejected(self, workers):
        with pytest.raises(DimensionError, match="input_kind"):
            sample("snake_1", side=4, trials=4, input_kind="gaussian",
                   workers=workers)

    def test_trials_zero_no_longer_surfaces_as_late_valueerror(self):
        """The historical symptom: 'cannot summarize an empty sample'."""
        with pytest.raises(DimensionError) as excinfo:
            sample("snake_1", side=4, trials=0)
        assert "summarize" not in str(excinfo.value)


class TestSeedProvenance:
    """Bug 2: explicit seeds are recorded, not silently dropped."""

    def test_int_and_tuple_seeds_round_trip(self):
        assert seed_provenance(7) == 7
        assert seed_provenance((1, 2, 3)) == [1, 2, 3]
        assert seed_provenance(None) is None

    def test_seed_sequence_records_entropy_and_spawn_key(self):
        seq = np.random.SeedSequence(1234).spawn(3)[2]
        prov = seed_provenance(seq)
        assert prov == {"entropy": 1234, "spawn_key": [2]}

    def test_generator_records_marker(self):
        assert seed_provenance(np.random.default_rng(0)) == "<generator>"

    def test_sample_meta_in_process(self):
        result = sample("snake_1", side=4, trials=4,
                        seed=np.random.SeedSequence(99))
        assert result.meta["seed"] == {"entropy": 99, "spawn_key": []}
        result = sample("snake_1", side=4, trials=4,
                        seed=np.random.default_rng(1))
        assert result.meta["seed"] == "<generator>"

    def test_sample_meta_campaign_mode(self):
        result = sample("snake_1", side=4, trials=4,
                        seed=np.random.SeedSequence(99), shard_size=2)
        assert result.meta["mode"] == "campaign"
        assert result.meta["seed"] == {"entropy": 99, "spawn_key": []}

    def test_manifest_accepts_provenance_shapes(self):
        from repro.obs.manifest import RunManifest

        for seed in (7, [1, 2], {"entropy": 1, "spawn_key": []}, "<generator>"):
            manifest = RunManifest(kind="verify", seed=seed)
            assert manifest.seed == seed


class TestCompiledScheduleConcurrency:
    """Bug 3: one compilation, one miss, no matter how many racers."""

    def test_racing_callers_count_one_miss(self, monkeypatch):
        class SlowCompiled(compile_mod.CompiledSchedule):
            def __init__(self, schedule, rows, cols=None):
                time.sleep(0.05)  # widen the race window
                super().__init__(schedule, rows, cols)

        monkeypatch.setattr(compile_mod, "CompiledSchedule", SlowCompiled)
        compile_mod.schedule_cache_clear()
        schedule = get_algorithm("snake_1")
        results: list[object] = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            results.append(compile_mod.compiled_schedule(schedule, 6))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        info = compile_mod.schedule_cache_info()
        assert info.misses == 1, f"racing callers double-compiled: {info}"
        assert info.hits == 7
        assert len({id(r) for r in results}) == 1
        compile_mod.schedule_cache_clear()

    def test_failed_compilation_releases_waiters(self, monkeypatch):
        calls = {"count": 0}
        real = compile_mod.CompiledSchedule

        class FlakyCompiled(real):
            def __init__(self, schedule, rows, cols=None):
                calls["count"] += 1
                if calls["count"] == 1:
                    raise RuntimeError("planted compile failure")
                super().__init__(schedule, rows, cols)

        monkeypatch.setattr(compile_mod, "CompiledSchedule", FlakyCompiled)
        compile_mod.schedule_cache_clear()
        schedule = get_algorithm("snake_2")
        with pytest.raises(RuntimeError, match="planted"):
            compile_mod.compiled_schedule(schedule, 6)
        # The failed attempt must not leave the key locked forever.
        compiled = compile_mod.compiled_schedule(schedule, 6)
        assert compiled is not None
        assert compile_mod.schedule_cache_info().misses == 1
        compile_mod.schedule_cache_clear()

    def test_distinct_keys_compile_independently(self):
        compile_mod.schedule_cache_clear()
        a = compile_mod.compiled_schedule(get_algorithm("snake_1"), 4)
        b = compile_mod.compiled_schedule(get_algorithm("snake_1"), 6)
        assert a is not b
        assert compile_mod.schedule_cache_info().misses == 2
        compile_mod.schedule_cache_clear()


class TestTrialStats:
    """Satellite: summarize()/describe() edge cases."""

    def test_empty_sample_raises_value_error(self):
        with pytest.raises(ValueError, match="empty sample"):
            summarize(np.array([]))

    def test_small_sample_flags_unreliable_ci(self):
        stats = summarize(np.arange(SMALL_SAMPLE_COUNT - 1))
        assert not stats.ci95_reliable
        assert "CI unreliable" in stats.describe()

    def test_large_sample_reports_ci(self):
        stats = summarize(np.arange(SMALL_SAMPLE_COUNT))
        assert stats.ci95_reliable
        assert "95% CI" in stats.describe()
        lo, hi = stats.ci95
        assert lo < stats.mean < hi

    def test_single_value_sample(self):
        stats = summarize(np.array([5.0]))
        assert stats.count == 1
        assert stats.std == 0.0  # repro: allow=RPR106
        assert stats.sem == 0.0  # repro: allow=RPR106
        assert not stats.ci95_reliable
