"""Smoke tests: every example script runs end to end on small inputs."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", ["8"]),
    ("algorithm_race.py", ["--trials", "4", "--sides", "4,8"]),
    ("theory_validation.py", ["--trials", "500", "--side", "8"]),
    ("adversarial_inputs.py", ["6"]),
    ("smallest_element_walk.py", ["6"]),
    ("zeroone_filmstrip.py", ["6", "2"]),
    ("exact_distributions.py", ["8"]),
    ("rectangular_meshes.py", ["64"]),
    ("trace_report.py", ["snake_2", "6"]),
    ("fault_tolerance.py", ["6"]),
]


@pytest.mark.parametrize("script,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{script} produced no output"


def test_trace_report_traced_run(tmp_path):
    """The observability walkthrough: --trace emits a valid trace + manifest."""
    result = subprocess.run(
        [
            sys.executable,
            str(EXAMPLES / "trace_report.py"),
            "snake_2", "6", "--trace", str(tmp_path),
        ],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    from repro.obs import load_manifest, read_trace

    events = read_trace(tmp_path / "events.jsonl")  # schema-validates
    assert any(ev["event"] == "cycle" and "info" in ev for ev in events)
    manifest = load_manifest(tmp_path / "manifest.json")
    assert manifest.algorithm == "snake_2"
    assert manifest.extra["steps"] > 0


def test_experiments_cli_list():
    result = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "--list"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0
    assert "E-T2" in result.stdout


def test_experiments_cli_runs_one(tmp_path):
    result = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "E-C1", "--csv", str(tmp_path)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0
    assert (tmp_path / "E-C1.csv").exists()
    assert "Corollary 1" in result.stdout


def test_experiments_cli_rejects_no_args():
    result = subprocess.run(
        [sys.executable, "-m", "repro.experiments"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 2


def test_experiments_cli_summary(tmp_path):
    out = tmp_path / "summary.md"
    result = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "--summary", str(out), "E-C1"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0
    text = out.read_text()
    assert "E-C1" in text and "Corollary 1" in text
