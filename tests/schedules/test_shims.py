"""Deprecation shims must warn AND stay bit-identical to the legacy code.

Each migrated entry point (``repro.baselines.shearsort``,
``repro.baselines.no_wrap``, ``repro.linear.odd_even``) is now a thin shim
over the registry.  These tests pin both halves of that contract: the shim
emits a :class:`DeprecationWarning`, and its outputs equal the historical
implementation bit for bit — for the linear sorter, against a verbatim
copy of the pre-registry pure-NumPy loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StepLimitExceeded
from repro.linear.odd_even import (
    LinearSortOutcome,
    odd_even_sort_steps,
    sort_linear,
    transposition_step,
    worst_case_input,
)
from repro.schedules import (
    build_odd_even,
    build_row_major_no_wrap,
    build_shearsort,
    shearsort_step_count,
)


# ---------------------------------------------------------------------------
# The historical pure-NumPy odd-even loop, copied verbatim from the
# pre-registry implementation as the bit-identity oracle.
# ---------------------------------------------------------------------------


def _legacy_sort_linear(array, *, direction=1, max_steps=None, raise_on_cap=False):
    work = np.array(array, copy=True)
    n = work.shape[-1]
    if max_steps is None:
        max_steps = n + 2
    target = np.sort(work, axis=-1)
    if direction == -1:
        target = target[..., ::-1]

    batch_shape = work.shape[:-1]
    steps = np.full(batch_shape, -1, dtype=np.int64)
    done = np.all(work == target, axis=-1)
    steps = np.where(done, 0, steps)

    t = 0
    while t < max_steps and not np.all(done):
        t += 1
        transposition_step(work, t, direction=direction)
        now = np.all(work == target, axis=-1)
        newly = now & ~done
        if np.any(newly):
            steps = np.where(newly, t, steps)
            done = done | now

    completed = np.asarray(done)
    if raise_on_cap and not np.all(completed):
        raise StepLimitExceeded(max_steps, int(np.sum(~completed)))
    return LinearSortOutcome(
        steps=np.asarray(steps), completed=completed, final=work, max_steps=max_steps
    )


class TestLinearShim:
    def test_sort_linear_warns(self):
        with pytest.warns(DeprecationWarning, match="sort_linear"):
            sort_linear(np.array([2, 1, 0]))

    def test_odd_even_sort_steps_warns(self):
        with pytest.warns(DeprecationWarning):
            odd_even_sort_steps(np.array([2, 1, 0]))

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    @pytest.mark.parametrize("direction", [1, -1])
    @pytest.mark.parametrize("batch_shape", [(), (3,), (2, 2)])
    def test_bit_identical_to_legacy_loop(self, direction, batch_shape):
        rng = np.random.default_rng((hash((direction, batch_shape)) & 0xFFFF,))
        for n in (1, 2, 3, 5, 8, 13):
            size = (*batch_shape, n)
            arr = rng.integers(-50, 50, size=size)
            new = sort_linear(arr, direction=direction)
            old = _legacy_sort_linear(arr, direction=direction)
            np.testing.assert_array_equal(new.steps, old.steps)
            np.testing.assert_array_equal(new.completed, old.completed)
            np.testing.assert_array_equal(new.final, old.final)
            assert new.max_steps == old.max_steps

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_cap_behaviour_matches(self):
        arr = worst_case_input(9)
        new = sort_linear(arr, max_steps=3)
        old = _legacy_sort_linear(arr, max_steps=3)
        assert new.steps_scalar() == old.steps_scalar() == -1
        np.testing.assert_array_equal(new.final, old.final)
        with pytest.raises(StepLimitExceeded):
            sort_linear(arr, max_steps=3, raise_on_cap=True)

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_already_sorted_records_zero_steps(self):
        out = sort_linear(np.arange(6))
        assert out.steps_scalar() == 0
        assert bool(np.all(out.completed))

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_worst_case_needs_n_minus_one(self):
        n = 8
        assert odd_even_sort_steps(worst_case_input(n)) >= n - 1

    def test_registry_cycle_equals_transposition_step(self):
        """The odd_even family's 2-step cycle IS transposition_step."""
        from repro.backends import iter_run

        rng = np.random.default_rng(5)
        arr = rng.permutation(10)
        mirror = arr.copy()
        for t, snap in iter_run("rect", build_odd_even(), arr.reshape(1, 10), 6):
            transposition_step(mirror, t)
            np.testing.assert_array_equal(np.asarray(snap).reshape(-1), mirror)


class TestBaselineShims:
    def test_shearsort_warns_and_matches_registry(self):
        from repro.baselines.shearsort import shearsort

        with pytest.warns(DeprecationWarning, match="shearsort"):
            legacy = shearsort(6)
        assert legacy == build_shearsort(side=6)
        assert legacy.name == "shearsort[side=6]"
        assert len(legacy.steps) == shearsort_step_count(6)

    def test_no_wrap_warns_and_matches_registry(self):
        from repro.baselines.no_wrap import row_major_no_wrap

        with pytest.warns(DeprecationWarning, match="row_major_no_wrap"):
            legacy = row_major_no_wrap()
        assert legacy == build_row_major_no_wrap()

    def test_phase_helpers_stay_warning_free(self):
        import warnings

        from repro.baselines.shearsort import shearsort_phases, shearsort_step_count

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert shearsort_step_count(8) == (2 * shearsort_phases(8) - 1) * 8

    def test_adversary_helper_stays_warning_free(self):
        import warnings

        from repro.baselines.no_wrap import smallest_column_adversary

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            grid = smallest_column_adversary(6)
        assert grid.shape == (6, 6)
