"""The schedule-family registry: lookup, specs, building, identity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import CampaignSpec
from repro.core.algorithms import ALGORITHM_NAMES
from repro.core.schedule import Schedule
from repro.errors import DimensionError, UnknownScheduleError, UnsupportedMeshError
from repro.schedules import (
    ScheduleFamily,
    available_families,
    build_schedule,
    execution_backend,
    family_names,
    get_family,
    mesh_shape,
    parse_spec,
    register_family,
    resolve,
    spec_name,
    topology_of,
)
from repro.schedules import registry as registry_mod


class TestLookup:
    def test_all_paper_algorithms_registered(self):
        names = family_names()
        for name in ALGORITHM_NAMES:
            assert name in names

    def test_baselines_and_linear_registered(self):
        names = family_names()
        for name in ("shearsort", "row_major_no_wrap", "odd_even", "random_network"):
            assert name in names

    def test_available_excludes_pathological(self):
        assert "row_major_no_wrap" not in available_families()
        assert "row_major_no_wrap" in available_families(include_pathological=True)
        assert "row_major_no_wrap" in family_names()

    def test_unknown_name_lists_families(self):
        with pytest.raises(UnknownScheduleError, match="snake_1"):
            get_family("quicksort")

    def test_unknown_error_satisfies_both_contracts(self):
        """The error is catchable as either historical exception family."""
        with pytest.raises(DimensionError):
            get_family("quicksort")
        with pytest.raises(UnsupportedMeshError):
            get_family("quicksort")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(DimensionError, match="already registered"):
            register_family(get_family("snake_1"))

    def test_registration_round_trip(self):
        family = ScheduleFamily(
            name="tmp_test_family",
            builder=lambda: build_schedule("snake_1"),
            description="test-only",
        )
        try:
            register_family(family)
            assert get_family("tmp_test_family") is family
        finally:
            # No public unregister (by design); clean the test entry out of
            # the process-global registry directly.
            registry_mod._REGISTRY.pop("tmp_test_family", None)

    def test_bad_family_metadata_rejected(self):
        with pytest.raises(DimensionError):
            ScheduleFamily(name="has space", builder=lambda: None)
        with pytest.raises(DimensionError):
            ScheduleFamily(name="ok_name", builder=lambda: None, topology="torus")


class TestSpecSyntax:
    def test_bare_name(self):
        assert parse_spec("snake_1") == ("snake_1", {})

    def test_params_parse(self):
        assert parse_spec("shearsort[side=8]") == ("shearsort", {"side": 8})
        assert parse_spec("random_network[seed=3,side=8,steps=64]") == (
            "random_network",
            {"seed": 3, "side": 8, "steps": 64},
        )

    def test_round_trip_canonical(self):
        name = spec_name("random_network", side=8, steps=64, seed=3)
        assert name == "random_network[seed=3,side=8,steps=64]"
        base, params = parse_spec(name)
        assert spec_name(base, **params) == name

    @pytest.mark.parametrize(
        "bad", ["", "1snake", "snake_1[", "snake_1[side]", "snake_1[side=x]"]
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(UnknownScheduleError):
            parse_spec(bad)

    def test_spec_errors_are_dimension_errors(self):
        with pytest.raises(DimensionError):
            parse_spec("snake_1[side=x]")


class TestBuild:
    def test_fixed_family_ignores_side(self):
        assert build_schedule("snake_1") == build_schedule("snake_1", side=8)

    def test_sided_family_needs_side(self):
        with pytest.raises(UnknownScheduleError, match="side"):
            build_schedule("shearsort")

    def test_seedable_family_needs_seed(self):
        with pytest.raises(UnknownScheduleError, match="seed"):
            build_schedule("random_network", side=8)

    def test_spec_params_win_over_arguments(self):
        pinned = build_schedule("shearsort[side=8]", side=4)
        assert pinned.metadata["side"] == 8

    def test_unknown_param_rejected(self):
        with pytest.raises(UnknownScheduleError, match="wibble"):
            build_schedule("snake_1[wibble=3]")

    def test_spec_and_kwargs_build_identical_instances(self):
        a = build_schedule("random_network[seed=3,side=8,steps=64]")
        b = build_schedule("random_network", side=8, seed=3, params={"steps": 64})
        assert a == b
        assert hash(a) == hash(b)
        assert a.name == b.name

    def test_resolve_passes_schedules_through(self):
        schedule = build_schedule("snake_2")
        assert resolve(schedule) is schedule

    def test_resolve_unknown_lists_families(self):
        with pytest.raises(UnknownScheduleError, match="unknown algorithm"):
            resolve("bitonic")


class TestTopology:
    def test_square_default(self):
        schedule = build_schedule("snake_1")
        assert topology_of(schedule) == "square"
        assert mesh_shape(schedule, 6) == (6, 6)
        assert execution_backend(schedule) == "vectorized"

    def test_linear_families(self):
        for spec in ("odd_even", "random_network[seed=0,side=6]"):
            schedule = build_schedule(spec, side=6, seed=0)
            assert topology_of(schedule) == "linear"
            assert mesh_shape(schedule, 6) == (1, 6)
            assert execution_backend(schedule) == "rect"

    def test_explicit_backend_wins(self):
        schedule = build_schedule("odd_even")
        assert execution_backend(schedule, "reference") == "reference"

    def test_tiny_side_rejected(self):
        with pytest.raises(DimensionError):
            mesh_shape(build_schedule("snake_1"), 1)


class TestFingerprintIdentity:
    """Generated params and seeds reach the campaign fingerprint via the name."""

    def _spec(self, algorithm: str) -> CampaignSpec:
        return CampaignSpec(algorithm, side=6, trials=8, shard_size=4, seed=1)

    def test_same_instance_same_fingerprint(self):
        a = self._spec("random_network[seed=3,side=6,steps=40]")
        b = self._spec("random_network[seed=3,side=6,steps=40]")
        assert a.fingerprint == b.fingerprint

    def test_network_seed_changes_fingerprint(self):
        a = self._spec("random_network[seed=3,side=6,steps=40]")
        b = self._spec("random_network[seed=4,side=6,steps=40]")
        assert a.fingerprint != b.fingerprint

    def test_network_params_change_fingerprint(self):
        a = self._spec("random_network[seed=3,side=6,steps=40]")
        b = self._spec("random_network[seed=3,side=6,steps=48]")
        assert a.fingerprint != b.fingerprint

    def test_sided_family_resolves_to_instance_name(self):
        spec = self._spec("shearsort")
        assert spec.algorithm_name == "shearsort[side=6]"

    def test_unknown_algorithm_rejected_at_spec_time(self):
        with pytest.raises(DimensionError, match="unknown algorithm"):
            self._spec("quicksort")


class TestCompileCacheIdentity:
    def test_different_seeds_compile_separately(self):
        from repro.backends.compile import (
            compiled_schedule,
            schedule_cache_clear,
            schedule_cache_info,
        )

        schedule_cache_clear()
        a = build_schedule("random_network", side=6, seed=1)
        b = build_schedule("random_network", side=6, seed=2)
        ca = compiled_schedule(a, 1, 6)
        cb = compiled_schedule(b, 1, 6)
        assert ca is not cb
        assert schedule_cache_info().misses >= 2
        # Rebuilding the same spec hits the cache: value-hashed identity.
        assert compiled_schedule(build_schedule("random_network", side=6, seed=1), 1, 6) is ca


class TestDeterminism:
    def test_network_rebuild_is_bit_identical(self):
        a = build_schedule("random_network", side=8, seed=42)
        b = build_schedule("random_network", side=8, seed=42)
        assert a == b
        assert a.steps == b.steps

    def test_network_covers_every_adjacent_position(self):
        schedule = build_schedule("random_network", side=8, seed=0, params={"steps": 5})
        positions = {op.low[1] for step in schedule.steps for op in step.ops}
        assert positions == set(range(7))

    def test_network_sorts(self):
        from repro.backends import run_sort

        schedule = build_schedule("random_network", side=8, seed=7)
        rng = np.random.default_rng(0)
        grid = rng.permutation(8).reshape(1, 8)
        out = run_sort("rect", schedule, grid)
        assert bool(np.all(out.completed))
        np.testing.assert_array_equal(out.final, np.arange(8).reshape(1, 8))

    def test_step_cap_hint_honoured(self):
        from repro.backends.base import resolve_step_cap, step_cap

        schedule = build_schedule("random_network", side=8, seed=7)
        hint = int(schedule.metadata["step_cap_hint"])
        assert resolve_step_cap(schedule, 1, 8) == max(hint, step_cap(1, 8))


class TestCertifiedSides:
    def test_declarations_match_topology_constraints(self):
        for name in family_names(include_pathological=True):
            family = get_family(name)
            assert all(side >= 2 for side in family.certified_sides), name
            if family.requires_even_side:
                assert all(s % 2 == 0 for s in family.certified_sides), name

    def test_bad_certified_sides_rejected(self):
        with pytest.raises(DimensionError):
            ScheduleFamily(
                name="ok_name", builder=lambda: None, certified_sides=(1,)
            )
        with pytest.raises(DimensionError):
            ScheduleFamily(
                name="ok_name", builder=lambda: None,
                requires_even_side=True, certified_sides=(2, 3),
            )

    def test_paper_and_baseline_declarations(self):
        assert get_family("row_major_row_first").certified_sides == (2, 4)
        assert get_family("snake_1").certified_sides == (2, 3, 4)
        assert get_family("shearsort").certified_sides == (2, 3, 4)
        assert get_family("odd_even").certified_sides == (2, 3, 4, 8, 16)
        assert get_family("random_network").certified_sides == ()
        assert get_family("row_major_no_wrap").certified_sides == ()
