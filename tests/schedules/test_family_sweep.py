"""Every registered family through the verification and campaign stacks.

The cross-backend differential runner and the metamorphic properties are
parametrized over ``schedules.available_families()`` — including a seeded
random-network instance — so registering a family is enough to put it
under the full property surface.  The campaign tests pin the reproduction
contract for generated families: the same spec merges to bit-identical
statistics regardless of worker count, and the fingerprint moves with the
generator seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import sample
from repro.randomness import random_permutation_mesh
from repro.schedules import (
    available_families,
    build_schedule,
    get_family,
    mesh_shape,
)
from repro.verify.differential import differential_run
from repro.verify.inputs import generate_cases, generate_linear_cases
from repro.verify.metamorphic import (
    check_relabeling_invariance,
    check_threshold_consistency,
)

SIDE = 6  # even: every family (incl. requires_even_side) is defined here
SEED = 11


def _instance(name: str):
    schedule = build_schedule(name, SIDE, seed=SEED)
    return schedule, mesh_shape(schedule, SIDE)


def _cases(name: str):
    schedule, (rows, cols) = _instance(name)
    if rows == cols:
        return schedule, generate_cases(SIDE, schedule.order, seed=SEED)
    return schedule, generate_linear_cases(cols, seed=SEED)


class TestFamilySweep:
    @pytest.mark.parametrize("name", available_families())
    def test_differential_all_backends_agree(self, name):
        schedule, cases = _cases(name)
        for case in cases:
            report = differential_run(schedule, case.grid)
            assert report.ok, report.describe()

    @pytest.mark.parametrize("name", available_families())
    def test_threshold_consistency(self, name):
        schedule, cases = _cases(name)
        perm = next(c for c in cases if c.family == "permutation")
        n_cells = int(np.asarray(perm.grid).size)
        zs = [1, n_cells // 2, n_cells - 1]
        assert check_threshold_consistency(schedule, perm.grid, thresholds=zs) == []

    @pytest.mark.parametrize("name", available_families())
    def test_relabeling_invariance(self, name):
        schedule, cases = _cases(name)
        perm = next(c for c in cases if c.family == "permutation")
        assert check_relabeling_invariance(schedule, perm.grid, seed=SEED) == []

    @pytest.mark.parametrize("name", available_families())
    def test_sorts_on_default_backend(self, name):
        from repro.backends import run_sort
        from repro.schedules import execution_backend

        schedule, shape = _instance(name)
        grid = random_permutation_mesh(shape, rng=(SEED, 55))
        out = run_sort(execution_backend(schedule), schedule, grid)
        assert bool(np.all(out.completed))

    def test_seeded_instance_is_in_the_sweep(self):
        """The sweep genuinely covers a generated, seeded network."""
        assert "random_network" in available_families()
        assert get_family("random_network").seedable


class TestCampaignReproducibility:
    SPEC = f"random_network[seed=3,side={SIDE},steps=40]"

    def _run(self, workers: int):
        return sample(
            self.SPEC,
            side=SIDE,
            trials=24,
            seed=(SEED, 7),
            shard_size=8,
            workers=workers,
        )

    def test_worker_count_does_not_change_values(self):
        serial = self._run(1)
        pooled = self._run(2)
        np.testing.assert_array_equal(serial.values, pooled.values)
        assert serial.stats.mean == pooled.stats.mean

    def test_meta_names_the_generated_instance(self):
        result = self._run(1)
        assert result.meta["algorithm"] == self.SPEC
        assert result.meta["backend"] == "rect"

    @pytest.mark.parametrize("family", ["odd_even", "shearsort"])
    def test_registry_families_sample_by_bare_name(self, family):
        result = sample(family, side=SIDE, trials=6, seed=(SEED, 9))
        assert len(result.values) == 6
        assert bool(np.all(np.asarray(result.values) >= 0))
