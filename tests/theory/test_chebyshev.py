"""Tests for the Chebyshev tail bounds (Theorems 3, 5, 8, 11)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import DimensionError
from repro.theory.chebyshev import (
    chebyshev_lower_tail,
    theorem3_tail_bound,
    theorem5_tail_bound,
    theorem8_tail_bound,
    theorem11_tail_bound,
)


class TestGenericTail:
    def test_basic(self):
        assert chebyshev_lower_tail(Fraction(10), Fraction(4), Fraction(8)) == Fraction(1)
        assert chebyshev_lower_tail(Fraction(10), Fraction(1), Fraction(8)) == Fraction(1, 4)

    def test_trivial_when_threshold_above_mean(self):
        assert chebyshev_lower_tail(Fraction(5), Fraction(1), Fraction(6)) == 1

    def test_capped_at_one(self):
        assert chebyshev_lower_tail(Fraction(10), Fraction(100), Fraction(9)) == 1

    def test_negative_variance_rejected(self):
        with pytest.raises(DimensionError):
            chebyshev_lower_tail(Fraction(1), Fraction(-1), Fraction(0))


class TestTheoremTails:
    @pytest.mark.parametrize(
        "fn,gamma",
        [
            (theorem3_tail_bound, Fraction(1, 10)),
            (theorem5_tail_bound, Fraction(1, 10)),
            (theorem8_tail_bound, Fraction(1, 4)),
            (theorem11_tail_bound, Fraction(1, 4)),
        ],
    )
    def test_vanishes_with_n(self, fn, gamma):
        values = [float(fn(side, gamma)) for side in (16, 32, 64)]
        assert values[0] >= values[1] >= values[2]
        assert values[2] < values[0] or values[0] == 1.0  # repro: allow=RPR106

    def test_theorem8_vanishes_for_gamma_below_half(self):
        assert float(theorem8_tail_bound(64, Fraction(2, 5))) < 0.05

    def test_theorem8_trivial_for_gamma_above_half(self):
        assert theorem8_tail_bound(16, Fraction(3, 5)) == 1

    def test_theorem5_trivial_beyond_three_eighths(self):
        # Theorem 5 only bites for gamma < 3/8
        assert theorem5_tail_bound(16, Fraction(1, 2)) == 1

    @pytest.mark.parametrize(
        "fn", [theorem3_tail_bound, theorem5_tail_bound, theorem8_tail_bound, theorem11_tail_bound]
    )
    def test_even_side_required(self, fn):
        with pytest.raises(DimensionError):
            fn(7, Fraction(1, 10))

    def test_bounds_are_probabilities(self):
        for side in (8, 16):
            for gamma in (Fraction(1, 10), Fraction(1, 4), Fraction(2, 5)):
                for fn in (
                    theorem3_tail_bound,
                    theorem5_tail_bound,
                    theorem8_tail_bound,
                    theorem11_tail_bound,
                ):
                    v = fn(side, gamma)
                    assert 0 <= v <= 1
