"""Tests for the odd-side appendix theory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import get_algorithm
from repro.core.engine import run_fixed_steps
from repro.errors import DimensionError
from repro.randomness import random_zero_one_grid
from repro.theory.appendix import (
    corollary4_average_lower,
    e_Z1_0_snake1_odd,
    e_Z1_0_snake1_odd_paper,
    e_z11_odd,
    e_z11_odd_paper,
    e_z21_odd,
    theorem13_threshold,
    var_Z1_0_snake1_odd,
)
from repro.zeroone.trackers import z1_statistic

ODD_SIDES = [3, 5, 7, 9, 13]


class TestLemma14:
    @pytest.mark.parametrize("side", ODD_SIDES)
    def test_e_z11_closed_form(self, side):
        assert e_z11_odd(side) == e_z11_odd_paper(side)

    @pytest.mark.parametrize("side", ODD_SIDES)
    def test_e_Z1_0_closed_form(self, side):
        assert e_Z1_0_snake1_odd(side) == e_Z1_0_snake1_odd_paper(side)

    def test_e_z21(self):
        assert float(e_z21_odd(5)) == (25 + 1) / (2 * 25)

    @pytest.mark.parametrize("side", [5, 9])
    def test_e_Z1_0_matches_mc(self, side, rng):
        grids = random_zero_one_grid(side, batch=6000, rng=rng)
        after = run_fixed_steps(get_algorithm("snake_1"), grids, 1)
        mc = float(np.mean(np.asarray(z1_statistic(after))))
        assert abs(mc - float(e_Z1_0_snake1_odd(side))) < 0.12

    def test_variance_positive(self):
        assert var_Z1_0_snake1_odd(7) > 0

    @pytest.mark.parametrize("side", [4, 6])
    def test_even_side_rejected(self, side):
        with pytest.raises(DimensionError):
            e_Z1_0_snake1_odd(side)


class TestTheorem13Corollary4:
    def test_threshold_value(self):
        # alpha=13, N=25: ceil(13*24/50) = 7
        assert theorem13_threshold(13, 5) == 7

    def test_corollary4_positive_and_linear(self):
        values = {side: float(corollary4_average_lower(side)) for side in (9, 15, 27)}
        assert all(v > 0 for v in values.values())
        assert values[27] > values[15] > values[9]
        # roughly N/2 for large sides
        assert abs(values[27] / (27 * 27) - 0.5) < 0.1
