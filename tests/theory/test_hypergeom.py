"""Tests for exact hypergeometric pattern probabilities."""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from math import comb

import pytest
from hypothesis import given
from hypothesis import strategies as st
from scipy import stats

from repro.errors import DimensionError
from repro.theory.hypergeom import (
    all_ones_probability,
    all_zeros_probability,
    paper_even_counts,
    paper_odd_counts,
    pattern_probability,
)


class TestPatternProbability:
    def test_single_cell_zero(self):
        # P(cell is zero) = zeros / cells
        assert pattern_probability(1, 1, 8, 16) == Fraction(1, 2)
        assert pattern_probability(0, 1, 8, 16) == Fraction(1, 2)

    def test_matches_binomial_formula(self):
        z, k, zeros, cells = 2, 4, 18, 36
        expected = Fraction(comb(cells - k, zeros - z), comb(cells, zeros))
        assert pattern_probability(z, k, zeros, cells) == expected

    @given(
        k=st.integers(0, 6),
        zeros=st.integers(0, 16),
    )
    def test_patterns_sum_to_one(self, k, zeros):
        cells = 16
        total = sum(
            pattern_probability(sum(bits), k, zeros, cells)
            for bits in product((0, 1), repeat=k)
        )
        assert total == 1

    def test_impossible_pattern_zero(self):
        # more zeros in pattern than exist
        assert pattern_probability(3, 3, 2, 16) == 0
        # remaining cells cannot absorb remaining zeros
        assert pattern_probability(0, 2, 15, 16) == 0

    def test_cross_check_scipy_hypergeom(self):
        """Aggregate over the C(k, z) patterns = hypergeometric pmf."""
        zeros, cells, k = 18, 36, 5
        for z in range(k + 1):
            ours = float(comb(k, z) * pattern_probability(z, k, zeros, cells))
            scipy_val = float(stats.hypergeom.pmf(z, cells, zeros, k))
            assert ours == pytest.approx(scipy_val, rel=1e-12)

    def test_invalid_args(self):
        with pytest.raises(DimensionError):
            pattern_probability(5, 4, 8, 16)
        with pytest.raises(DimensionError):
            pattern_probability(0, 20, 8, 16)
        with pytest.raises(DimensionError):
            pattern_probability(0, 2, 20, 16)


class TestConvenienceWrappers:
    def test_all_ones(self):
        assert all_ones_probability(2, 8, 16) == pattern_probability(0, 2, 8, 16)

    def test_all_zeros(self):
        assert all_zeros_probability(2, 8, 16) == pattern_probability(2, 2, 8, 16)

    def test_paper_even_counts(self):
        assert paper_even_counts(3) == (18, 36)

    def test_paper_odd_counts(self):
        assert paper_odd_counts(2) == (13, 25)

    def test_counts_reject_zero(self):
        with pytest.raises(DimensionError):
            paper_even_counts(0)
        with pytest.raises(DimensionError):
            paper_odd_counts(0)
