"""Tests for the exact moments vs the paper's printed closed forms."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.core.algorithms import get_algorithm
from repro.core.engine import run_fixed_steps
from repro.randomness import random_zero_one_grid
from repro.theory import moments
from repro.zeroone.trackers import y1_statistic, z1_statistic
from repro.zeroone.weights import first_column_zeros

NS = [2, 3, 4, 6, 10]


class TestRowFirstClosedForms:
    @pytest.mark.parametrize("n", NS)
    def test_lemma4_e_z1(self, n):
        assert moments.e_z1_row_first(n) == moments.e_z1_row_first_paper(n)

    @pytest.mark.parametrize("n", NS)
    def test_theorem3_e_z1z2(self, n):
        assert moments.e_z1z2_row_first(n) == moments.e_z1z2_row_first_paper(n)

    @pytest.mark.parametrize("n", NS)
    def test_lemma4_e_M_bound(self, n):
        # E[M] >= E[Z1] - n - 1 = the printed bound
        assert moments.e_Z1_row_first(n) - n - 1 == moments.e_M_lower_row_first_paper(n)

    @pytest.mark.parametrize("n", NS)
    def test_var_positive_and_asymptote(self, n):
        var = moments.var_Z1_row_first(n)
        assert 0 < var < Fraction(3 * n, 8)

    def test_var_approaches_3n_over_8(self):
        n = 200
        assert float(moments.var_Z1_row_first(n)) / (3 * n / 8) > 0.99


class TestColFirstClosedForms:
    @pytest.mark.parametrize("n", NS)
    def test_e_z1(self, n):
        assert moments.e_z1_col_first(n) == moments.e_z1_col_first_paper(n)

    @pytest.mark.parametrize("n", NS)
    def test_e_z1sq(self, n):
        assert moments.e_z1sq_col_first(n) == moments.e_z1sq_col_first_paper(n)

    @pytest.mark.parametrize("n", NS)
    def test_theorem4_e_M_bound(self, n):
        assert moments.e_Z1_col_first(n) - n - 1 == moments.e_M_lower_col_first_paper(n)

    def test_block_distribution_sums_to_one(self):
        dist = moments.prob_zh_col_first(4)
        assert sum(dist.values()) == 1

    @pytest.mark.parametrize("n", NS)
    def test_e_z1z2_paper_form_close_but_garbled(self, n):
        """The printed rational function contains OCR-garbled coefficients;
        it converges to the same 121/64 limit but differs at small n."""
        exact = moments.e_z1z2_col_first(n)
        paper = moments.e_z1z2_col_first_paper(n)
        assert abs(float(exact) - float(paper)) < 0.05
        assert abs(float(exact) - 121 / 64) < 0.5 / n

    def test_var_asymptote_23_over_64(self):
        n = 60
        assert abs(float(moments.var_Z1_col_first(n)) / n - 23 / 64) < 0.02

    def test_zh_value_cases(self):
        assert moments.zh_value_col_first((0, 0, 0, 0)) == 2
        assert moments.zh_value_col_first((0, 0, 0, 1)) == 2
        assert moments.zh_value_col_first((0, 1, 0, 1)) == 2  # stacked zeros
        assert moments.zh_value_col_first((1, 0, 1, 0)) == 2
        assert moments.zh_value_col_first((0, 0, 1, 1)) == 1
        assert moments.zh_value_col_first((0, 1, 1, 1)) == 1
        assert moments.zh_value_col_first((1, 1, 1, 1)) == 0

    def test_zh_value_rejects_bad_pattern(self):
        from repro.errors import DimensionError

        with pytest.raises(DimensionError):
            moments.zh_value_col_first((0, 2, 0, 1))

    def test_zh_value_matches_simulation(self):
        """The canonical-block map equals actually running col+row sort."""
        from itertools import product

        schedule = get_algorithm("row_major_col_first")
        for pattern in product((0, 1), repeat=4):
            grid = np.ones((4, 4), dtype=np.int8)
            grid[0, 0], grid[0, 1], grid[1, 0], grid[1, 1] = pattern
            after = run_fixed_steps(schedule, grid, 2)
            simulated = int((after[0:2, 0] == 0).sum())
            assert simulated == moments.zh_value_col_first(pattern), pattern


class TestSnakeMoments:
    @pytest.mark.parametrize("side", [4, 6, 8, 12, 20])
    def test_lemma9(self, side):
        assert moments.e_Z1_0_snake1(side) == moments.e_Z1_0_snake1_paper(side)

    @pytest.mark.parametrize("side", [4, 6, 8, 12, 20])
    def test_lemma11(self, side):
        assert moments.e_Y1_0_snake2(side) == moments.e_Y1_0_snake2_paper(side)

    @pytest.mark.parametrize("side", [4, 6, 8])
    def test_block_decomposition_covers_definition(self, side):
        """Block sizes must cover exactly the cells Definition 4 counts."""
        blocks = moments.snake1_z1_blocks(side)
        half = side // 2
        counted_cells = side * half + half  # odd cols + even rows of last col
        assert sum(blocks) <= side * side
        # number of indicators = number of counted cells
        assert len(blocks) == counted_cells

    @pytest.mark.parametrize("side", [5, 7, 9])
    def test_block_count_odd_side(self, side):
        blocks = moments.snake1_z1_blocks(side)
        n = side // 2
        counted_cells = side * n + n  # cols 1,3,..,2n-1 plus even rows of last col
        assert len(blocks) == counted_cells

    def test_var_snake1_contradicts_paper_but_matches_mc(self, rng):
        """Ground-truth check of the Theorem 8 variance discrepancy."""
        side = 12
        exact = float(moments.var_Z1_0_snake1(side))
        paper = float(moments.var_Z1_0_snake1_paper(side // 2))
        grids = random_zero_one_grid(side, batch=4000, rng=rng)
        after = run_fixed_steps(get_algorithm("snake_1"), grids, 1)
        mc = float(np.var(np.asarray(z1_statistic(after)), ddof=1))
        assert abs(mc - exact) < 0.15 * exact
        assert paper > 5 * exact  # the printed constant is far off

    def test_var_snake2_positive(self):
        assert moments.var_Y1_0_snake2(8) > 0

    def test_e_y1_mc(self, rng):
        side = 8
        grids = random_zero_one_grid(side, batch=4000, rng=rng)
        after = run_fixed_steps(get_algorithm("snake_2"), grids, 1)
        mc = float(np.mean(np.asarray(y1_statistic(after))))
        assert abs(mc - float(moments.e_Y1_0_snake2(side))) < 0.15


class TestMomentMonteCarlo:
    """First moments vs simulation (the real pin between theory and code)."""

    @pytest.mark.parametrize("n", [2, 4])
    def test_e_Z1_row_first_mc(self, n, rng):
        side = 2 * n
        grids = random_zero_one_grid(side, batch=6000, rng=rng)
        after = run_fixed_steps(get_algorithm("row_major_row_first"), grids, 1)
        mc = float(np.mean(np.asarray(first_column_zeros(after))))
        assert abs(mc - float(moments.e_Z1_row_first(n))) < 0.08

    @pytest.mark.parametrize("n", [2, 4])
    def test_e_Z1_col_first_mc(self, n, rng):
        side = 2 * n
        grids = random_zero_one_grid(side, batch=6000, rng=rng)
        after = run_fixed_steps(get_algorithm("row_major_col_first"), grids, 2)
        mc = float(np.mean(np.asarray(first_column_zeros(after))))
        assert abs(mc - float(moments.e_Z1_col_first(n))) < 0.08

    @pytest.mark.parametrize("side", [4, 8])
    def test_e_Z1_0_snake1_mc(self, side, rng):
        grids = random_zero_one_grid(side, batch=6000, rng=rng)
        after = run_fixed_steps(get_algorithm("snake_1"), grids, 1)
        mc = float(np.mean(np.asarray(z1_statistic(after))))
        assert abs(mc - float(moments.e_Z1_0_snake1(side))) < 0.12
