"""Tests for the exact potential PMFs."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.core.algorithms import get_algorithm
from repro.core.engine import run_fixed_steps
from repro.errors import DimensionError
from repro.randomness import random_zero_one_grid
from repro.theory import moments
from repro.theory.distributions import (
    block_statistic_pmf,
    col_first_block,
    indicator_block,
    lower_tail,
    theorem3_tail_exact,
    theorem8_tail_exact,
    y1_0_snake2_pmf,
    z1_0_snake1_pmf,
    z1_col_first_pmf,
    z1_row_first_pmf,
)
from repro.theory.chebyshev import theorem3_tail_bound, theorem8_tail_bound
from repro.zeroone.trackers import z1_statistic


class TestBlockSpecs:
    def test_indicator_block_patterns_sum(self):
        size, outcomes = indicator_block(3)
        assert size == 3
        assert sum(w for _, w, _ in outcomes) == 2**3

    def test_col_first_block_patterns_sum(self):
        size, outcomes = col_first_block()
        assert size == 4
        assert sum(w for _, w, _ in outcomes) == 16

    def test_indicator_rejects_zero(self):
        with pytest.raises(DimensionError):
            indicator_block(0)


class TestPmfBasics:
    def test_normalizes(self):
        pmf = z1_row_first_pmf(3)
        assert sum(pmf) == 1

    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_moments_match_closed_forms(self, n):
        pmf = z1_row_first_pmf(n)
        mean = sum(x * p for x, p in enumerate(pmf))
        var = sum((x - mean) ** 2 * p for x, p in enumerate(pmf))
        assert mean == moments.e_Z1_row_first(n)
        assert var == moments.var_Z1_row_first(n)

    @pytest.mark.parametrize("n", [2, 3])
    def test_col_first_moments_match(self, n):
        pmf = z1_col_first_pmf(n)
        mean = sum(x * p for x, p in enumerate(pmf))
        var = sum((x - mean) ** 2 * p for x, p in enumerate(pmf))
        assert mean == moments.e_Z1_col_first(n)
        assert var == moments.var_Z1_col_first(n)

    @pytest.mark.parametrize("side", [4, 6, 8])
    def test_snake_moments_match(self, side):
        pmf = z1_0_snake1_pmf(side)
        mean = sum(x * p for x, p in enumerate(pmf))
        var = sum((x - mean) ** 2 * p for x, p in enumerate(pmf))
        assert mean == moments.e_Z1_0_snake1(side)
        assert var == moments.var_Z1_0_snake1(side)

    def test_y_pmf_mean(self):
        pmf = y1_0_snake2_pmf(6)
        mean = sum(x * p for x, p in enumerate(pmf))
        assert mean == moments.e_Y1_0_snake2(6)

    def test_support_bounds(self):
        # Z1 row-first lives on 0..2n
        pmf = z1_row_first_pmf(4)
        assert len(pmf) == 9

    def test_odd_side_rejected(self):
        with pytest.raises(DimensionError):
            z1_0_snake1_pmf(5)

    def test_overfull_blocks_rejected(self):
        with pytest.raises(DimensionError):
            block_statistic_pmf([indicator_block(5)], 2, 4)


class TestPmfAgainstSimulation:
    def test_pmf_matches_empirical_histogram(self, rng):
        """The strongest check: exact PMF vs the simulated statistic."""
        side = 6
        pmf = np.array([float(p) for p in z1_0_snake1_pmf(side)])
        grids = random_zero_one_grid(side, batch=8000, rng=rng)
        after = run_fixed_steps(get_algorithm("snake_1"), grids, 1)
        values = np.asarray(z1_statistic(after))
        hist = np.bincount(values, minlength=len(pmf)) / len(values)
        assert np.max(np.abs(hist - pmf[: len(hist)])) < 0.02


class TestExactTails:
    def test_lower_tail(self):
        pmf = z1_row_first_pmf(2)
        assert lower_tail(pmf, -1) == 0
        assert lower_tail(pmf, len(pmf)) == 1

    def test_exact_below_chebyshev(self):
        gamma = Fraction(1, 10)
        for side in (8, 12):
            assert theorem3_tail_exact(side, gamma) <= theorem3_tail_bound(side, gamma)
            assert theorem8_tail_exact(side, gamma) <= theorem8_tail_bound(side, gamma)

    def test_exact_tail_decreasing_in_side(self):
        gamma = Fraction(1, 10)
        values = [float(theorem3_tail_exact(side, gamma)) for side in (8, 12, 16)]
        assert values[0] > values[1] > values[2]

    def test_odd_side_rejected(self):
        with pytest.raises(DimensionError):
            theorem3_tail_exact(7, Fraction(1, 10))


class TestOddSideDistribution:
    def test_odd_pmf_mean_matches_lemma14(self):
        from repro.theory.appendix import e_Z1_0_snake1_odd
        from repro.theory.distributions import z1_0_snake1_odd_pmf

        for side in (5, 7):
            pmf = z1_0_snake1_odd_pmf(side)
            mean = sum(x * p for x, p in enumerate(pmf))
            assert mean == e_Z1_0_snake1_odd(side)

    def test_odd_pmf_even_side_rejected(self):
        from repro.theory.distributions import z1_0_snake1_odd_pmf

        with pytest.raises(DimensionError):
            z1_0_snake1_odd_pmf(6)

    def test_theorem13_tail_exact(self):
        from repro.theory.distributions import theorem13_tail_exact

        values = [float(theorem13_tail_exact(side, Fraction(1, 10))) for side in (5, 9, 13)]
        assert all(0 <= v <= 1 for v in values)
        assert values[-1] < values[0]

    def test_theorem13_even_side_rejected(self):
        from repro.theory.distributions import theorem13_tail_exact

        with pytest.raises(DimensionError):
            theorem13_tail_exact(8, Fraction(1, 10))
