"""Tests for the per-theorem lower bounds."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import DimensionError
from repro.theory.bounds import (
    corollary1_worst_case_lower,
    corollary2_lower_bound,
    diameter_lower_bound,
    theorem1_additional_steps,
    theorem2_average_lower,
    theorem4_average_lower,
    theorem6_lower_from_potential,
    theorem7_average_lower,
    theorem7_average_lower_exact,
    theorem9_lower_from_potential,
    theorem10_average_lower,
    theorem10_average_lower_exact,
    theorem12_average_lower,
)


class TestSimpleBounds:
    def test_diameter(self):
        assert diameter_lower_bound(8) == 14

    def test_theorem2(self):
        assert theorem2_average_lower(8) == Fraction(64, 2) - 16

    def test_theorem4(self):
        assert theorem4_average_lower(8) == Fraction(3 * 64, 8) - 16

    def test_corollary1(self):
        assert corollary1_worst_case_lower(8) == 2 * 64 - 32

    def test_theorem10(self):
        assert theorem10_average_lower(8) == 32 - 4 - 4

    def test_theorem12(self):
        # E[max(2m-3, 0)] over m=1..N equals N - 2 + 1/N
        n_cells = 64
        assert theorem12_average_lower(8) == Fraction(
            sum(max(2 * m - 3, 0) for m in range(1, n_cells + 1)), n_cells
        )
        assert abs(float(theorem12_average_lower(8)) - (n_cells - 2)) < 1

    @pytest.mark.parametrize(
        "fn", [theorem2_average_lower, theorem4_average_lower, corollary1_worst_case_lower]
    )
    def test_even_side_required(self, fn):
        with pytest.raises(DimensionError):
            fn(7)


class TestTheorem1:
    def test_zeros_kind(self):
        # x surplus zeroes above ceil(alpha/side), each costs 2*side
        assert theorem1_additional_steps(10, 32, 8, kind="zeros") == (10 - 4 - 1) * 16

    def test_ones_kind(self):
        assert theorem1_additional_steps(10, 32, 8, kind="ones") == (10 - 4 - 1) * 16

    def test_clips_at_zero(self):
        assert theorem1_additional_steps(1, 32, 8, kind="zeros") == 0

    def test_bad_kind(self):
        with pytest.raises(DimensionError):
            theorem1_additional_steps(1, 32, 8, kind="columns")


class TestCorollary2:
    def test_value(self):
        assert corollary2_lower_bound(3, 8) == 4 * 4 * 3

    def test_negative_m_clips(self):
        assert corollary2_lower_bound(-1, 8) == 0


class TestPotentialBounds:
    def test_theorem6_uses_f_threshold(self):
        # f(32, 64) = 18; x = 25 -> 4*(25-19) = 24
        assert theorem6_lower_from_potential(25, 8) == 24

    def test_theorem9(self):
        assert theorem9_lower_from_potential(25, 32) == 4 * (25 - 16 - 1)

    def test_exact_close_to_printed(self):
        for side in (8, 16, 32):
            exact7 = float(theorem7_average_lower_exact(side))
            printed7 = float(theorem7_average_lower(side))
            assert abs(exact7 - printed7) < 4
            exact10 = float(theorem10_average_lower_exact(side))
            printed10 = float(theorem10_average_lower(side))
            assert abs(exact10 - printed10) < 4

    def test_bounds_grow_linearly(self):
        for fn in (
            theorem2_average_lower,
            theorem4_average_lower,
            theorem7_average_lower_exact,
            theorem10_average_lower_exact,
            theorem12_average_lower,
        ):
            ratio = float(fn(32)) / float(fn(16))
            assert 3.0 <= ratio <= 5.0  # ~4x when N quadruples
