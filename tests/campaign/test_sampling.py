"""The sample() facade, deprecation shims, and small-sample statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.experiments import (
    SampleResult,
    sample,
    sample_sort_steps,
    sample_statistic_after_steps,
)
from repro.experiments.montecarlo import SMALL_SAMPLE_COUNT, summarize
from repro.zeroone.trackers import z1_statistic
from repro.zeroone.weights import first_column_zeros


class TestFacadeLegacyPath:
    def test_bit_identical_to_deprecated_sort_sampler(self):
        new = sample("snake_1", side=6, trials=12, seed=7)
        with pytest.deprecated_call():
            old = sample_sort_steps("snake_1", 6, 12, seed=7)
        np.testing.assert_array_equal(new.values, old)
        assert new.meta["mode"] == "in-process"

    def test_bit_identical_to_deprecated_statistic_sampler(self):
        new = sample(
            "snake_1", side=6, trials=10, kind="statistic",
            statistic=z1_statistic, seed=11,
        )
        with pytest.deprecated_call():
            old = sample_statistic_after_steps(
                "snake_1", 6, 10, z1_statistic, seed=11
            )
        np.testing.assert_array_equal(new.values, old)

    def test_deprecated_names_still_importable_from_package(self):
        from repro.experiments.montecarlo import (
            sample_sort_steps as from_module,
        )

        assert from_module is sample_sort_steps

    def test_shims_forward_all_arguments(self):
        with pytest.deprecated_call():
            a = sample_sort_steps(
                "snake_1", 6, 9, seed=4, input_kind="zero_one",
                batch_size=3, backend="reference",
            )
        b = sample(
            "snake_1", side=6, trials=9, seed=4, input_kind="zero_one",
            batch_size=3, backend="reference",
        )
        np.testing.assert_array_equal(a, b.values)

    def test_positional_statistic_validation(self):
        with pytest.raises(DimensionError, match="requires a statistic"):
            sample("snake_1", side=6, trials=4, kind="statistic")
        with pytest.raises(DimensionError, match="no statistic"):
            sample("snake_1", side=6, trials=4, statistic=z1_statistic)
        with pytest.raises(DimensionError, match="kind"):
            sample("snake_1", side=6, trials=4, kind="nonsense")


class TestFacadeCampaignPath:
    def test_workers_flag_switches_to_campaign_mode(self):
        result = sample("snake_1", side=6, trials=24, seed=1, workers=2)
        assert result.meta["mode"] == "campaign"
        assert result.meta["workers"] == 2

    def test_shard_size_alone_switches(self):
        result = sample("snake_1", side=6, trials=24, seed=1, shard_size=8)
        assert result.meta["mode"] == "campaign"
        assert result.meta["num_shards"] == 3

    def test_checkpoint_dir_alone_switches(self, tmp_path):
        result = sample(
            "snake_1", side=6, trials=24, seed=1, checkpoint_dir=tmp_path
        )
        assert result.meta["mode"] == "campaign"
        assert result.meta["checkpoint"] is not None

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_campaign_values_worker_invariant(self, workers):
        baseline = sample("snake_1", side=6, trials=24, seed=1, shard_size=8)
        result = sample(
            "snake_1", side=6, trials=24, seed=1, shard_size=8, workers=workers
        )
        assert result.values_digest == baseline.values_digest

    def test_statistic_campaign(self):
        result = sample(
            "snake_1", side=6, trials=24, kind="statistic",
            statistic=first_column_zeros, seed=2, workers=2, shard_size=8,
        )
        assert result.values.dtype == np.float64
        assert result.stats.count == 24


class TestSampleResult:
    def test_array_protocol(self):
        result = sample("snake_1", side=6, trials=8, seed=0)
        assert len(result) == 8
        assert float(np.mean(result)) == result.stats.mean
        as_f32 = np.asarray(result, dtype=np.float32)
        assert as_f32.dtype == np.float32

    def test_digest_tracks_values(self):
        a = sample("snake_1", side=6, trials=8, seed=0)
        b = sample("snake_1", side=6, trials=8, seed=0)
        c = sample("snake_1", side=6, trials=8, seed=1)
        assert a.values_digest == b.values_digest
        assert a.values_digest != c.values_digest

    def test_to_manifest_in_process(self):
        manifest = sample("snake_1", side=6, trials=8, seed=0).to_manifest()
        assert manifest.kind == "run"
        assert manifest.algorithm == "snake_1"
        assert manifest.result_digest

    def test_to_manifest_campaign(self):
        manifest = sample(
            "snake_1", side=6, trials=16, seed=0, shard_size=8
        ).to_manifest()
        assert manifest.kind == "campaign"
        assert manifest.extra["num_shards"] == 2

    def test_isinstance(self):
        assert isinstance(sample("snake_1", side=6, trials=4), SampleResult)


class TestSmallSampleStats:
    def test_small_sample_flagged(self):
        stats = summarize(np.arange(5.0))
        assert not stats.ci95_reliable
        assert "CI unreliable" in stats.describe()
        assert f"n=5 < {SMALL_SAMPLE_COUNT}" in stats.describe()

    def test_large_sample_not_flagged(self):
        stats = summarize(np.arange(float(SMALL_SAMPLE_COUNT)))
        assert stats.ci95_reliable
        assert "95% CI [" in stats.describe()

    def test_ci_still_computed_when_small(self):
        stats = summarize(np.array([1.0, 2.0, 3.0]))
        lo, hi = stats.ci95
        assert lo < stats.mean < hi
