"""Checkpoint/resume: interrupted campaigns finish bit-identical."""

from __future__ import annotations

import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.campaign import (
    CampaignSpec,
    CheckpointStore,
    checkpoint_path,
    run_campaign,
)
from repro.errors import CampaignError, CheckpointError
from repro.obs import RecordingObserver, load_manifest
from tests.campaign.faulty import MARKER_ENV, flaky_statistic

SPEC = CampaignSpec("snake_1", side=6, trials=40, seed=99, shard_size=8)


class TestResume:
    def test_partial_then_resume_is_bit_identical(self, tmp_path):
        """The acceptance scenario: stop a campaign mid-flight, resume it,
        and the merged sample equals the uninterrupted run exactly."""
        uninterrupted = run_campaign(SPEC, workers=1)

        partial = run_campaign(
            SPEC, workers=1, checkpoint_dir=tmp_path, max_shards=2
        )
        assert not partial.complete
        assert partial.meta["completed_shards"] == 2
        np.testing.assert_array_equal(partial.values, uninterrupted.values[:16])

        resumed = run_campaign(
            SPEC, workers=2, checkpoint_dir=tmp_path, resume=True
        )
        assert resumed.complete
        assert resumed.meta["resumed_shards"] == 2
        np.testing.assert_array_equal(resumed.values, uninterrupted.values)
        assert resumed.values_digest == uninterrupted.values_digest

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_resume_digest_invariant_to_workers(self, tmp_path, workers):
        baseline = run_campaign(SPEC, workers=1)
        run_campaign(SPEC, workers=1, checkpoint_dir=tmp_path, max_shards=3)
        resumed = run_campaign(
            SPEC, workers=workers, checkpoint_dir=tmp_path, resume=True
        )
        assert resumed.values_digest == baseline.values_digest

    def test_failed_campaign_is_resumable(self, tmp_path, monkeypatch):
        """A campaign aborted by a persistent shard failure leaves a valid
        checkpoint; once the fault clears, resume completes the plan with
        values identical to a never-failed run."""
        marker = tmp_path / "fault"
        marker.touch()
        monkeypatch.setenv(MARKER_ENV, str(marker))
        spec = CampaignSpec(
            "snake_1", side=6, trials=32, seed=7, shard_size=8,
            kind="statistic", statistic=flaky_statistic,
        )
        with pytest.raises(CampaignError):
            run_campaign(spec, workers=1, retries=0, checkpoint_dir=tmp_path)
        assert not marker.exists()  # the failing attempt consumed the fault

        resumed = run_campaign(
            spec, workers=1, checkpoint_dir=tmp_path, resume=True
        )
        baseline = run_campaign(spec, workers=1)
        np.testing.assert_array_equal(resumed.values, baseline.values)

    def test_kill_mid_flight_subprocess(self, tmp_path):
        """Kill a campaign process with SIGKILL mid-run; the checkpoint
        recovers every fully-written shard and resume matches exactly."""
        repo_root = Path(__file__).resolve().parents[2]
        code = f"""
import sys
sys.path.insert(0, {str(repo_root / "src")!r})
from repro.campaign import CampaignSpec, run_campaign
from repro.obs.events import Observer

class Suicide(Observer):
    def __init__(self):
        self.n = 0
    def on_shard_end(self, event):
        self.n += 1
        if self.n == 3:
            import os, signal
            os.kill(os.getpid(), signal.SIGKILL)

spec = CampaignSpec("snake_1", side=6, trials=40, seed=99, shard_size=8)
run_campaign(spec, workers=1, checkpoint_dir={str(tmp_path)!r},
             observer=Suicide())
"""
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, timeout=120
        )
        assert proc.returncode == -signal.SIGKILL

        store = CheckpointStore(checkpoint_path(tmp_path, SPEC), SPEC)
        recovered = store.load()
        assert len(recovered) == 3

        uninterrupted = run_campaign(SPEC, workers=1)
        resumed = run_campaign(
            SPEC, workers=2, checkpoint_dir=tmp_path, resume=True
        )
        assert resumed.meta["resumed_shards"] == 3
        np.testing.assert_array_equal(resumed.values, uninterrupted.values)

    def test_resumed_shards_reported_to_observer(self, tmp_path):
        run_campaign(SPEC, workers=1, checkpoint_dir=tmp_path, max_shards=2)
        rec = RecordingObserver()
        run_campaign(
            SPEC, workers=1, checkpoint_dir=tmp_path, resume=True, observer=rec
        )
        assert rec.campaign_starts[0].resumed_shards == 2
        from_ckpt = [e for e in rec.shard_ends if e.from_checkpoint]
        assert len(from_ckpt) == 2


class TestStoreEdgeCases:
    def test_torn_tail_is_skipped(self, tmp_path):
        run_campaign(SPEC, workers=1, checkpoint_dir=tmp_path, max_shards=3)
        path = checkpoint_path(tmp_path, SPEC)
        with path.open("a") as fh:
            fh.write('{"shard": 3, "trials": 8, "values": [1, 2')  # torn
        recovered = CheckpointStore(path, SPEC).load()
        assert sorted(recovered) == [0, 1, 2]

    def test_corrupt_middle_line_is_an_error(self, tmp_path):
        run_campaign(SPEC, workers=1, checkpoint_dir=tmp_path, max_shards=2)
        path = checkpoint_path(tmp_path, SPEC)
        lines = path.read_text().splitlines()
        lines.insert(2, "{garbage")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="corrupt"):
            CheckpointStore(path, SPEC).load()

    def test_fingerprint_mismatch_refused(self, tmp_path):
        run_campaign(SPEC, workers=1, checkpoint_dir=tmp_path, max_shards=2)
        other = CampaignSpec("snake_2", side=6, trials=40, seed=99, shard_size=8)
        path = checkpoint_path(tmp_path, SPEC)
        with pytest.raises(CheckpointError, match="different"):
            CheckpointStore(path, other).load()

    def test_resume_on_other_backend_allowed(self, tmp_path):
        """Backends sample bit-identically, so the fingerprint (hence the
        checkpoint) is shared across them by design."""
        run_campaign(SPEC, workers=1, checkpoint_dir=tmp_path, max_shards=4)
        ref = CampaignSpec(
            "snake_1", side=6, trials=40, seed=99, shard_size=8,
            backend="reference",
        )
        assert ref.fingerprint == SPEC.fingerprint
        resumed = run_campaign(ref, workers=1, checkpoint_dir=tmp_path, resume=True)
        np.testing.assert_array_equal(
            resumed.values, run_campaign(SPEC, workers=1).values
        )

    def test_not_a_checkpoint_file(self, tmp_path):
        path = tmp_path / "campaign-bogus.jsonl"
        path.write_text("just some text\n")
        with pytest.raises(CheckpointError):
            CheckpointStore(path, SPEC).load()

    def test_missing_file_loads_empty(self, tmp_path):
        store = CheckpointStore(tmp_path / "nope.jsonl", SPEC)
        assert store.load() == {}

    def test_append_requires_open(self, tmp_path):
        store = CheckpointStore(tmp_path / "c.jsonl", SPEC)
        with pytest.raises(CheckpointError, match="not open"):
            store.append(0, np.array([1]), 0.0)

    def test_fresh_open_truncates(self, tmp_path):
        run_campaign(SPEC, workers=1, checkpoint_dir=tmp_path, max_shards=3)
        result = run_campaign(SPEC, workers=1, checkpoint_dir=tmp_path)
        assert result.meta["resumed_shards"] == 0
        assert result.complete

    def test_manifest_written_with_digest(self, tmp_path):
        result = run_campaign(SPEC, workers=1, checkpoint_dir=tmp_path)
        manifest_path = checkpoint_path(tmp_path, SPEC).with_suffix(
            ".manifest.json"
        )
        manifest = load_manifest(manifest_path)
        assert manifest.kind == "campaign"
        assert manifest.result_digest == result.values_digest
        assert manifest.extra["campaign"] == SPEC.fingerprint

    def test_float_values_roundtrip_exactly(self, tmp_path):
        """JSON repr round-trips IEEE-754 doubles bit-for-bit — the property
        the resume-equals-uninterrupted guarantee rests on."""
        spec = CampaignSpec(
            "snake_1", side=6, trials=24, seed=3, shard_size=8,
            kind="statistic", statistic=flaky_statistic,
        )
        direct = run_campaign(spec, workers=1)
        run_campaign(spec, workers=1, checkpoint_dir=tmp_path)
        restored = CheckpointStore(checkpoint_path(tmp_path, spec), spec).load()
        merged = np.concatenate([restored[i] for i in sorted(restored)])
        np.testing.assert_array_equal(merged, direct.values)
        assert merged.dtype == np.float64


class TestObservabilityPayload:
    def test_metrics_and_spans_roundtrip(self, tmp_path):
        from repro.campaign import ShardRecord

        path = tmp_path / "c.jsonl"
        store = CheckpointStore(path, SPEC)
        store.open(fresh=True)
        metrics = {"repro_runs_total": {"kind": "counter", "help": "", "value": 1.0}}
        spans = {"name": "shard", "wall": 0.25, "cpu": 0.2, "count": 1}
        store.append(0, np.array([5, 6], dtype=np.int64), 0.1,
                     metrics=metrics, spans=spans)
        store.append(1, np.array([7, 8], dtype=np.int64), 0.1)
        store.close()
        records = CheckpointStore(path, SPEC).load_records()
        assert isinstance(records[0], ShardRecord)
        assert records[0].metrics == metrics
        assert records[0].spans == spans
        assert records[1].metrics is None and records[1].spans is None
        # load() stays the values-only view, payload or not.
        values = CheckpointStore(path, SPEC).load()
        np.testing.assert_array_equal(values[0], [5, 6])

    def test_payload_free_readers_unaffected(self, tmp_path):
        """A checkpoint with payloads is loadable by the values-only path —
        unknown fields are carried, never fatal."""
        obs_spec = CampaignSpec("snake_1", side=6, trials=16, seed=4, shard_size=8)
        from repro.obs import MetricsObserver, MetricsRegistry

        run_campaign(
            obs_spec, workers=1, checkpoint_dir=tmp_path,
            observer=MetricsObserver(MetricsRegistry()),
        )
        store = CheckpointStore(checkpoint_path(tmp_path, obs_spec), obs_spec)
        records = store.load_records()
        assert all(r.metrics is not None and r.spans is not None
                   for r in records.values())
        assert set(store.load()) == set(records)
