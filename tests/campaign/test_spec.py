"""CampaignSpec: shard plan, seeding, fingerprint identity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import CampaignSpec, Shard
from repro.errors import DimensionError
from repro.randomness import shard_counts, shard_seed_sequence
from repro.zeroone.weights import first_column_zeros


class TestShardPlan:
    def test_counts_cover_trials(self):
        spec = CampaignSpec("snake_1", side=6, trials=100, shard_size=16)
        plan = spec.shards()
        assert sum(shard.trials for shard in plan) == 100
        assert [shard.index for shard in plan] == list(range(len(plan)))
        assert plan[:-1] == [Shard(i, 16) for i in range(6)]
        assert plan[-1] == Shard(6, 4)

    def test_exact_division_has_no_remainder_shard(self):
        plan = CampaignSpec("snake_1", side=6, trials=64, shard_size=16).shards()
        assert [shard.trials for shard in plan] == [16, 16, 16, 16]

    def test_shard_counts_validate(self):
        with pytest.raises(DimensionError):
            shard_counts(0, 4)
        with pytest.raises(DimensionError):
            shard_counts(4, 0)

    def test_shard_seeds_match_seedsequence_spawn(self):
        """Shard i's stream IS SeedSequence.spawn child i — re-derived
        statelessly, so any worker computes the same one."""
        for seed in (0, 12345, (2026, 8, 3)):
            spec = CampaignSpec("snake_1", side=6, trials=48, shard_size=16, seed=seed)
            children = np.random.SeedSequence(
                list(seed) if isinstance(seed, tuple) else seed
            ).spawn(3)
            for i, child in enumerate(children):
                ours = spec.shard_seed(i)
                assert ours.spawn_key == child.spawn_key
                np.testing.assert_array_equal(
                    ours.generate_state(4), child.generate_state(4)
                )

    def test_shard_seed_sequence_streams_differ(self):
        a = shard_seed_sequence(7, 0).generate_state(4)
        b = shard_seed_sequence(7, 1).generate_state(4)
        assert not np.array_equal(a, b)


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(DimensionError, match="kind"):
            CampaignSpec("snake_1", side=6, trials=8, kind="medians")

    def test_statistic_pairing(self):
        with pytest.raises(DimensionError, match="requires a statistic"):
            CampaignSpec("snake_1", side=6, trials=8, kind="statistic")
        with pytest.raises(DimensionError, match="no statistic"):
            CampaignSpec(
                "snake_1", side=6, trials=8, statistic=first_column_zeros
            )

    def test_unknown_backend(self):
        with pytest.raises(DimensionError, match="unknown backend"):
            CampaignSpec("snake_1", side=6, trials=8, backend="gpu")

    def test_unknown_algorithm(self):
        with pytest.raises(Exception, match="unknown algorithm"):
            CampaignSpec("bogo_sort", side=6, trials=8)

    def test_default_input_kinds(self):
        assert CampaignSpec("snake_1", side=6, trials=8).input_kind == "permutation"
        assert (
            CampaignSpec(
                "snake_1", side=6, trials=8, kind="statistic",
                statistic=first_column_zeros,
            ).input_kind
            == "zero_one"
        )


class TestFingerprint:
    def test_stable_across_equivalent_specs(self):
        a = CampaignSpec("snake_1", side=6, trials=64, seed=9)
        b = CampaignSpec("snake_1", side=6, trials=64, seed=9)
        assert a.fingerprint == b.fingerprint

    def test_value_determining_fields_change_it(self):
        base = CampaignSpec("snake_1", side=6, trials=64, seed=9)
        for other in (
            CampaignSpec("snake_2", side=6, trials=64, seed=9),
            CampaignSpec("snake_1", side=8, trials=64, seed=9),
            CampaignSpec("snake_1", side=6, trials=65, seed=9),
            CampaignSpec("snake_1", side=6, trials=64, seed=10),
            CampaignSpec("snake_1", side=6, trials=64, seed=9, shard_size=32),
        ):
            assert other.fingerprint != base.fingerprint

    def test_backend_and_batch_size_excluded(self):
        """Backends are cross-validated bit-identical and draws are
        batch-size invariant, so neither invalidates a checkpoint."""
        base = CampaignSpec("snake_1", side=6, trials=64, seed=9)
        assert (
            CampaignSpec(
                "snake_1", side=6, trials=64, seed=9, backend="reference"
            ).fingerprint
            == base.fingerprint
        )
        assert (
            CampaignSpec(
                "snake_1", side=6, trials=64, seed=9, batch_size=4
            ).fingerprint
            == base.fingerprint
        )

    def test_dtype_per_kind(self):
        assert CampaignSpec("snake_1", side=6, trials=8).values_dtype == "int64"
        spec = CampaignSpec(
            "snake_1", side=6, trials=8, kind="statistic",
            statistic=first_column_zeros,
        )
        assert spec.values_dtype == "float64"
