"""ExecutionOptions: validation, facade equivalence, deprecation shims."""

from __future__ import annotations

import warnings
from dataclasses import FrozenInstanceError, replace

import numpy as np
import pytest

from repro.campaign import (
    CampaignSpec,
    CheckpointStore,
    ExecutionOptions,
    checkpoint_path,
    run_campaign,
)
from repro.errors import CheckpointError, DimensionError
from repro.experiments.config import ExperimentConfig
from repro.experiments.sampling import sample

SPEC = CampaignSpec("snake_1", side=6, trials=40, seed=99, shard_size=8)


class TestValidation:
    def test_defaults_are_not_campaign_mode(self):
        options = ExecutionOptions()
        assert not options.campaign_mode

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 2},
            {"shard_size": 8},
            {"checkpoint_dir": "/tmp/ck"},
            {"store": "/tmp/store"},
            {"max_shards": 2, "checkpoint_dir": "/tmp/ck"},
        ],
    )
    def test_campaign_granularity_options_force_campaign_mode(self, kwargs):
        assert ExecutionOptions(**kwargs).campaign_mode

    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            ({"workers": 0}, "workers"),
            ({"retries": -1}, "retries"),
            ({"shard_size": 0}, "shard_size"),
            ({"max_shards": 0}, "max_shards"),
            ({"resume": True}, "requires checkpoint_dir"),
            ({"max_shards": 3}, "requires checkpoint_dir"),
        ],
    )
    def test_invalid_options_rejected_at_construction(self, kwargs, match):
        with pytest.raises(DimensionError, match=match):
            ExecutionOptions(**kwargs)

    def test_frozen(self):
        with pytest.raises(FrozenInstanceError):
            ExecutionOptions().workers = 2  # type: ignore[misc]

    def test_describe_is_json_ready(self, tmp_path):
        from repro.store import LocalResultStore

        options = ExecutionOptions(
            workers=2, checkpoint_dir=tmp_path, store=LocalResultStore(tmp_path)
        )
        described = options.describe()
        assert described["workers"] == 2
        assert described["checkpoint_dir"] == str(tmp_path)
        assert described["store"] == f"local:{tmp_path}"
        import json

        json.dumps(described)  # must not raise


class TestFacadeEquivalence:
    def test_execution_matches_loose_kwargs(self):
        loose = sample("snake_1", side=6, trials=40, seed=99, workers=2)
        packed = sample(
            "snake_1", side=6, trials=40, seed=99,
            execution=ExecutionOptions(workers=2),
        )
        np.testing.assert_array_equal(packed.values, loose.values)
        assert packed.values_digest == loose.values_digest

    def test_loose_and_execution_conflict_raises(self):
        with pytest.raises(DimensionError, match="not both"):
            sample(
                "snake_1", side=6, trials=40, seed=99,
                workers=2, execution=ExecutionOptions(workers=2),
            )

    def test_run_campaign_conflict_raises(self):
        with pytest.raises(DimensionError, match="not both"):
            run_campaign(SPEC, workers=2, execution=ExecutionOptions(workers=2))

    def test_run_campaign_adopts_execution(self, tmp_path):
        options = ExecutionOptions(
            workers=2, checkpoint_dir=tmp_path, max_shards=2
        )
        partial = run_campaign(SPEC, execution=options)
        assert partial.complete is False
        assert partial.meta["workers"] == 2

    def test_execution_store_threads_through_facade(self, tmp_path):
        cold = sample(
            "snake_1", side=6, trials=40, seed=99,
            execution=ExecutionOptions(store=tmp_path),
        )
        assert cold.meta["store"]["hit"] is False
        warm = sample("snake_1", side=6, trials=40, seed=99, store=tmp_path)
        assert warm.meta["store"]["hit"] is True
        assert warm.values_digest == cold.values_digest


class TestExperimentConfig:
    def test_legacy_fields_build_execution(self):
        cfg = ExperimentConfig(scale="quick", workers=3)
        assert cfg.execution.workers == 3
        assert cfg.execution.backend == "vectorized"

    def test_explicit_execution_syncs_legacy_mirrors(self, tmp_path):
        cfg = ExperimentConfig(
            scale="quick",
            execution=ExecutionOptions(workers=2, checkpoint_dir=tmp_path),
        )
        assert cfg.workers == 2
        assert cfg.checkpoint_dir == str(tmp_path)

    def test_sampler_kwargs_is_deprecated_shim(self):
        cfg = ExperimentConfig(scale="quick")
        with pytest.warns(DeprecationWarning, match="sampler_kwargs"):
            kwargs = cfg.sampler_kwargs
        assert kwargs == {"execution": cfg.execution}

    def test_sampler_kwargs_still_drives_sample(self):
        cfg = ExperimentConfig(scale="quick", seed=99)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = sample(
                "snake_1", side=6, trials=40, seed=99, **cfg.sampler_kwargs
            )
        direct = sample(
            "snake_1", side=6, trials=40, seed=99, execution=cfg.execution
        )
        assert legacy.values_digest == direct.values_digest


class TestCheckpointErrorFields:
    def test_fingerprint_mismatch_is_structured(self, tmp_path):
        """The mismatch error names the offending file and both spec
        identities as attributes, not just prose."""
        run_campaign(SPEC, workers=1, checkpoint_dir=tmp_path, max_shards=2)
        other = replace(SPEC, algorithm="snake_2")
        path = checkpoint_path(tmp_path, SPEC)
        with pytest.raises(CheckpointError) as excinfo:
            CheckpointStore(path, other).load()
        err = excinfo.value
        assert err.path == path
        assert err.spec_fingerprint == other.fingerprint
        assert err.checkpoint_fingerprint == SPEC.fingerprint
        assert err.spec_identity["algorithm"] == "snake_2"
        assert err.checkpoint_identity["algorithm"] == "snake_1"
        assert "differing identity field(s): algorithm" in str(err)

    def test_non_mismatch_errors_leave_fields_none(self, tmp_path):
        run_campaign(SPEC, workers=1, checkpoint_dir=tmp_path, max_shards=2)
        path = checkpoint_path(tmp_path, SPEC)
        lines = path.read_text().splitlines()
        lines.insert(1, "{torn but not the tail}")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="corrupt") as excinfo:
            CheckpointStore(path, SPEC).load()
        assert excinfo.value.spec_fingerprint is None
        assert excinfo.value.checkpoint_fingerprint is None


class TestDeprecatedMainShim:
    def test_python_m_experiments_warns_and_forwards(self, capsys):
        import repro.experiments.__main__ as shim

        with pytest.warns(DeprecationWarning, match="repro run"):
            code = shim.main(["--list"])
        assert code == 0
        assert "E-T2" in capsys.readouterr().out
