"""run_campaign: worker-count determinism, retry, fault tolerance, events."""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.errors import CampaignError, DimensionError
from repro.obs import RecordingObserver
from tests.campaign.faulty import MARKER_ENV, broken_statistic, flaky_statistic

SPEC = CampaignSpec("snake_1", side=6, trials=40, seed=2026, shard_size=8)


class TestDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bit_identical_across_worker_counts(self, workers):
        baseline = run_campaign(SPEC, workers=1)
        result = run_campaign(SPEC, workers=workers)
        np.testing.assert_array_equal(result.values, baseline.values)
        assert result.values_digest == baseline.values_digest
        assert result.values.dtype == np.int64

    def test_backend_parity(self):
        baseline = run_campaign(SPEC, workers=1)
        spec_ref = CampaignSpec(
            "snake_1", side=6, trials=40, seed=2026, shard_size=8,
            backend="reference",
        )
        np.testing.assert_array_equal(
            run_campaign(spec_ref, workers=1).values, baseline.values
        )

    def test_statistic_campaign_across_workers(self):
        spec = CampaignSpec(
            "snake_1", side=6, trials=32, seed=5, shard_size=8,
            kind="statistic", statistic=flaky_statistic, num_steps=2,
        )
        a = run_campaign(spec, workers=1)
        b = run_campaign(spec, workers=2)
        np.testing.assert_array_equal(a.values, b.values)
        assert a.values.dtype == np.float64

    def test_shard_boundaries_do_change_values(self):
        """shard_size is part of the identity: a different plan is a
        different campaign, not a silent re-draw of the same one."""
        other = CampaignSpec("snake_1", side=6, trials=40, seed=2026, shard_size=10)
        assert not np.array_equal(
            run_campaign(other).values, run_campaign(SPEC).values
        )


class TestRetry:
    def test_transient_fault_is_retried(self, tmp_path, monkeypatch):
        marker = tmp_path / "fault"
        marker.touch()
        monkeypatch.setenv(MARKER_ENV, str(marker))
        spec = CampaignSpec(
            "snake_1", side=6, trials=24, seed=1, shard_size=8,
            kind="statistic", statistic=flaky_statistic,
        )
        result = run_campaign(spec, workers=1, retries=2)
        assert not marker.exists()

        clean = run_campaign(spec, workers=1)
        np.testing.assert_array_equal(result.values, clean.values)

    def test_transient_fault_is_retried_in_pool(self, tmp_path, monkeypatch):
        marker = tmp_path / "fault"
        marker.touch()
        monkeypatch.setenv(MARKER_ENV, str(marker))
        spec = CampaignSpec(
            "snake_1", side=6, trials=24, seed=1, shard_size=8,
            kind="statistic", statistic=flaky_statistic,
        )
        result = run_campaign(spec, workers=2, retries=2)
        clean = run_campaign(spec, workers=1)
        np.testing.assert_array_equal(result.values, clean.values)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_permanent_fault_exhausts_retries(self, workers):
        spec = CampaignSpec(
            "snake_1", side=6, trials=16, seed=1, shard_size=8,
            kind="statistic", statistic=broken_statistic,
        )
        with pytest.raises(CampaignError) as excinfo:
            run_campaign(spec, workers=workers, retries=1)
        assert excinfo.value.failed_shards

    def test_argument_validation(self):
        with pytest.raises(DimensionError):
            run_campaign(SPEC, workers=0)
        with pytest.raises(DimensionError):
            run_campaign(SPEC, retries=-1)
        with pytest.raises(DimensionError, match="requires checkpoint_dir"):
            run_campaign(SPEC, max_shards=2)


class TestEventsAndMeta:
    def test_campaign_events_emitted(self):
        rec = RecordingObserver()
        result = run_campaign(SPEC, workers=1, observer=rec)
        assert len(rec.campaign_starts) == 1
        start = rec.campaign_starts[0]
        assert start.campaign == SPEC.fingerprint
        assert start.num_shards == 5
        assert start.workers == 1
        assert len(rec.shard_ends) == 5
        assert sum(e.trials for e in rec.shard_ends) == 40
        assert len(rec.campaign_ends) == 1
        end = rec.campaign_ends[0]
        assert end.complete and end.trials == 40
        assert result.meta["num_shards"] == 5

    def test_no_per_step_events_leak_from_shards(self):
        """Shard execution must not re-enter the ambient observer."""
        from repro.obs import use_observer

        rec = RecordingObserver()
        with use_observer(rec):
            run_campaign(SPEC, workers=1)
        assert rec.run_starts == []
        assert rec.steps == []
        assert len(rec.campaign_starts) == 1

    def test_meta_and_result_shape(self):
        result = run_campaign(SPEC, workers=2)
        assert result.complete
        assert len(result) == 40
        assert result.meta["mode"] == "campaign"
        assert result.meta["workers"] == 2
        assert result.meta["checkpoint"] is None
        assert result.stats.count == 40
        np.testing.assert_array_equal(np.asarray(result), result.values)
