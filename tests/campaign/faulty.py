"""Fault-injecting statistics for campaign retry/crash tests.

These must live in an importable module (not a test body, not a lambda)
because campaign workers receive the statistic by pickle.  Fault state is
a marker *file* — visible across process boundaries, unlike an in-memory
flag — whose path travels to workers through the environment (inherited
on fork).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

MARKER_ENV = "REPRO_TEST_FAULT_MARKER"


def _marker() -> Path | None:
    path = os.environ.get(MARKER_ENV)
    return Path(path) if path else None


def flaky_statistic(grids: np.ndarray) -> np.ndarray:
    """Fails while the marker file exists, consuming it on first hit.

    The first shard attempt to run while the marker is present deletes it
    and raises; every later attempt (and every other shard) succeeds — the
    shape of a transient worker fault.
    """
    marker = _marker()
    if marker is not None and marker.exists():
        marker.unlink()
        raise RuntimeError("injected transient fault")
    return np.asarray(grids.sum(axis=(-2, -1)), dtype=np.float64)


def broken_statistic(grids: np.ndarray) -> np.ndarray:
    """Fails unconditionally — the shape of a deterministic bug."""
    raise RuntimeError("injected permanent fault")
