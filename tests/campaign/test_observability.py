"""Cross-process observability: merged metrics, span trees, manifests.

The tentpole contract of the profiling layer: a campaign run with
collection on (an observer and/or ambient profiler) produces

* one merged coordinator-side metrics registry that includes **worker**
  activity (runs/steps counted inside pool processes),
* one grafted span tree covering every shard regardless of which process
  executed it,
* a manifest whose recorded digest replays bit-identically — observation
  must never change values.
"""

from __future__ import annotations

import numpy as np

from repro.campaign import CampaignSpec, run_campaign
from repro.obs import (
    MetricsObserver,
    MetricsRegistry,
    SpanProfiler,
    aggregate_spans,
    load_manifest,
    span_from_dict,
    use_profiler,
    write_manifest,
)

SPEC = CampaignSpec("snake_1", side=6, trials=32, seed=77, shard_size=8)


def run_observed(*, workers: int, profiler: SpanProfiler | None = None, **kwargs):
    registry = MetricsRegistry()
    observer = MetricsObserver(registry)
    if profiler is None:
        result = run_campaign(SPEC, workers=workers, observer=observer, **kwargs)
    else:
        with use_profiler(profiler):
            result = run_campaign(SPEC, workers=workers, observer=observer, **kwargs)
    return result, registry


class TestMergedMetrics:
    def test_worker_side_counts_reach_coordinator(self):
        result, registry = run_observed(workers=2)
        # 4 shards x (1 run each): the runs happened inside pool workers,
        # yet the coordinator's registry must count them.
        assert registry["repro_runs_total"].value == 4
        assert registry["repro_steps_total"].value > 0
        assert result.meta["worker_metrics"]["repro_runs_total"]["value"] == 4

    def test_serial_and_pool_metrics_agree(self):
        _, serial = run_observed(workers=1)
        _, pooled = run_observed(workers=2)
        for name in ("repro_runs_total", "repro_steps_total"):
            assert serial[name].value == pooled[name].value

    def test_unobserved_campaign_carries_no_payload(self):
        result = run_campaign(SPEC, workers=2)
        assert "worker_metrics" not in result.meta
        assert "span_tree" not in result.meta


class TestSpanTree:
    def test_one_tree_spans_all_shards(self):
        profiler = SpanProfiler()
        result, _ = run_observed(workers=2, profiler=profiler)
        tree = result.meta["span_tree"]
        assert tree["name"] == "campaign"
        totals = aggregate_spans([span_from_dict(tree)])
        assert totals["shard"]["count"] == 4
        assert totals["run"]["count"] == 4
        assert {"compile", "kernel", "merge"} <= totals.keys()
        # The ambient profiler holds the same tree the meta serialized.
        assert profiler.tree()[0] == tree

    def test_campaign_local_profiler_when_only_observer_given(self):
        # No ambient profiler, but an observer: collection still happens,
        # with a campaign-local profiler owning the tree.
        result, _ = run_observed(workers=2)
        tree = result.meta["span_tree"]
        assert aggregate_spans([span_from_dict(tree)])["shard"]["count"] == 4


class TestManifestRoundTrip:
    def test_workers2_manifest_replays_bit_identically(self, tmp_path):
        result, _ = run_observed(workers=2)
        path = write_manifest(tmp_path / "manifest.json", result.to_manifest())
        manifest = load_manifest(path)
        assert manifest.kind == "campaign"
        # The manifest carries the merged observability payload...
        assert manifest.extra["worker_metrics"]["repro_runs_total"]["value"] == 4
        assert manifest.extra["span_tree"]["name"] == "campaign"
        # ...and its digest replays bit-identically, observed or not,
        # serial or pooled: observation never changes values.
        replay = run_campaign(SPEC, workers=1)
        assert replay.values_digest == manifest.result_digest
        np.testing.assert_array_equal(replay.values, result.values)


class TestCheckpointedPayloads:
    def test_resume_restores_metrics_and_spans(self, tmp_path):
        first, first_reg = run_observed(
            workers=2, checkpoint_dir=tmp_path, max_shards=2
        )
        assert not first.complete
        resumed, resumed_reg = run_observed(
            workers=2, checkpoint_dir=tmp_path, resume=True
        )
        assert resumed.complete
        # Restored shards re-emit their checkpointed snapshots, so the
        # resumed campaign's merged metrics and span tree still cover all
        # four shards, not just the two recomputed ones.
        assert resumed_reg["repro_runs_total"].value == 4
        tree = resumed.meta["span_tree"]
        assert aggregate_spans([span_from_dict(tree)])["shard"]["count"] == 4
        # And values stay bit-identical to an uninterrupted run.
        uninterrupted = run_campaign(SPEC, workers=1)
        np.testing.assert_array_equal(resumed.values, uninterrupted.values)

    def test_unobserved_checkpoint_resumes_under_observation(self, tmp_path):
        # A checkpoint written without collection must still resume cleanly
        # when the resuming run observes; only the fresh shards contribute.
        partial = run_campaign(
            SPEC, workers=1, checkpoint_dir=tmp_path, max_shards=2
        )
        assert not partial.complete
        resumed, registry = run_observed(
            workers=1, checkpoint_dir=tmp_path, resume=True
        )
        assert resumed.complete
        assert registry["repro_runs_total"].value == 2  # fresh shards only
        uninterrupted = run_campaign(SPEC, workers=1)
        np.testing.assert_array_equal(resumed.values, uninterrupted.values)
