"""The shared driver: outcomes, event stream, caps, aliases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    SortOutcome,
    available_backends,
    iter_run,
    run_sort,
    run_steps,
    step_cap,
)
from repro.core.algorithms import get_algorithm
from repro.core.engine import default_step_cap, run_until_sorted
from repro.errors import DimensionError
from repro.randomness import random_permutation_grid
from repro.rect.engine import rect_step_cap


def test_step_cap_matches_historical_square_cap():
    for side in (4, 6, 8, 16, 32):
        assert step_cap(side) == default_step_cap(side)
        assert step_cap(side, side) == default_step_cap(side)
        assert rect_step_cap(side, side) == default_step_cap(side)


def test_step_cap_rectangular():
    assert step_cap(4, 8) == 8 * 32 + 8 * 12 + 64
    assert rect_step_cap(4, 8) == step_cap(4, 8)


def test_outcome_infers_shape_from_final():
    final = np.arange(12).reshape(3, 4)
    outcome = SortOutcome(
        steps=np.asarray(5), completed=np.asarray(True), final=final, max_steps=99
    )
    assert (outcome.rows, outcome.cols) == (3, 4)
    with pytest.raises(DimensionError):
        _ = outcome.side


def test_outcome_side_on_square():
    final = np.arange(16).reshape(4, 4)
    outcome = SortOutcome(
        steps=np.asarray(3), completed=np.asarray(True), final=final, max_steps=99
    )
    assert outcome.side == 4


def test_steps_scalar_raises_on_batch(rng):
    grids = random_permutation_grid(4, batch=2, rng=rng)
    outcome = run_sort("vectorized", get_algorithm("snake_1"), grids)
    with pytest.raises(DimensionError):
        outcome.steps_scalar()


@pytest.mark.parametrize("backend", available_backends())
def test_run_start_carries_mesh_shape(backend, rng):
    from repro.backends import get_backend
    from repro.obs.events import RecordingObserver

    rec = RecordingObserver()
    grid = random_permutation_grid(6, rng=rng)
    run_sort(backend, get_algorithm("snake_1"), grid, observer=rec)
    assert len(rec.run_starts) == 1
    start = rec.run_starts[0]
    assert (start.rows, start.cols) == (6, 6)
    assert start.side == 6  # historical field stays populated
    assert len(rec.run_ends) == 1
    end = rec.run_ends[0]
    if get_backend(backend).supports_batch:
        assert bool(end.completed) is True  # 0-d array, as the engine always did
    else:
        assert end.completed is True  # single-grid backends scalarize
    assert int(end.steps) == rec.steps[-1].t


def test_run_sort_defaults_cap_from_mesh_shape(rng):
    grid = random_permutation_grid(6, rng=rng)
    outcome = run_sort("vectorized", get_algorithm("snake_1"), grid)
    assert outcome.max_steps == step_cap(6)


def test_engine_shims_delegate_to_driver(rng):
    from repro.core.engine import run_fixed_steps

    grid = random_permutation_grid(6, rng=rng)
    schedule = get_algorithm("row_major_row_first")
    np.testing.assert_array_equal(
        run_fixed_steps(schedule, grid, 7),
        run_steps("vectorized", schedule, grid, 7),
    )
    shim = run_until_sorted(schedule, grid)
    unified = run_sort("vectorized", schedule, grid)
    assert shim.steps_scalar() == unified.steps_scalar()
    assert shim.backend == unified.backend == "vectorized"
    np.testing.assert_array_equal(shim.final, unified.final)


def test_iter_run_yields_snapshots(rng):
    grid = random_permutation_grid(6, rng=rng)
    schedule = get_algorithm("snake_1")
    seen = []
    for t, state in iter_run("vectorized", schedule, grid, 4):
        seen.append((t, state.copy()))
    assert [t for t, _ in seen] == [1, 2, 3, 4]
    for t, state in seen:
        np.testing.assert_array_equal(
            state, run_steps("vectorized", schedule, grid, t)
        )


def test_iter_run_copy_false_yields_live_buffer(rng):
    grid = random_permutation_grid(6, rng=rng)
    schedule = get_algorithm("snake_1")
    buffers = [state for _, state in iter_run(
        "vectorized", schedule, grid, 3, copy=False
    )]
    assert buffers[0] is buffers[1] is buffers[2]
