"""Every registered backend must agree with the vectorized kernels.

These are the shared cross-validation sweeps of the unified API: whatever a
backend does internally (strided NumPy kernels, a pure-Python oracle, a
processor-level machine, the rectangular compiler), ``run_sort`` and
``run_steps`` must produce identical step counts and identical grids.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import available_backends, get_backend, run_sort, run_steps
from repro.core.algorithms import ALGORITHM_NAMES, get_algorithm
from repro.errors import DimensionError, StepLimitExceeded
from repro.randomness import random_permutation_grid

BACKENDS = available_backends()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_backends_agree_on_sort(name, backend, rng):
    side = 6
    grid = random_permutation_grid(side, rng=rng)
    schedule = get_algorithm(name)
    expected = run_sort("vectorized", schedule, grid)
    outcome = run_sort(backend, schedule, grid)
    assert outcome.backend == backend
    assert outcome.all_completed
    assert outcome.steps_scalar() == expected.steps_scalar()
    np.testing.assert_array_equal(outcome.final, expected.final)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_backends_agree_stepwise(name, backend, rng):
    side = 6
    grid = random_permutation_grid(side, rng=rng)
    schedule = get_algorithm(name)
    for t in (1, 2, 3, 4, 7, 12):
        np.testing.assert_array_equal(
            run_steps(backend, schedule, grid, t),
            run_steps("vectorized", schedule, grid, t),
        )


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_rect_matches_vectorized_cell_for_cell_on_square_mesh(name, rng):
    """The square kernels are the rows == cols case of the rect compiler."""
    side = 6
    grid = random_permutation_grid(side, rng=rng)
    schedule = get_algorithm(name)
    cycle = len(schedule.steps)
    for t in range(1, 2 * cycle + 1):
        np.testing.assert_array_equal(
            run_steps("rect", schedule, grid, t),
            run_steps("vectorized", schedule, grid, t),
        )
    r = run_sort("rect", schedule, grid)
    v = run_sort("vectorized", schedule, grid)
    assert r.steps_scalar() == v.steps_scalar()
    assert (r.rows, r.cols) == (v.rows, v.cols) == (side, side)
    np.testing.assert_array_equal(r.final, v.final)


@pytest.mark.parametrize("backend", BACKENDS)
def test_sorted_input_reports_zero_steps(backend):
    schedule = get_algorithm("row_major_row_first")
    target = np.arange(16, dtype=np.int64).reshape(4, 4)
    outcome = run_sort(backend, schedule, target)
    assert outcome.steps_scalar() == 0
    assert outcome.all_completed
    np.testing.assert_array_equal(outcome.final, target)


@pytest.mark.parametrize("backend", BACKENDS)
def test_cap_behaviour_is_uniform(backend, rng):
    schedule = get_algorithm("snake_1")
    grid = random_permutation_grid(6, rng=rng)
    outcome = run_sort(backend, schedule, grid, max_steps=1)
    assert not outcome.all_completed
    assert outcome.steps_scalar() == -1
    with pytest.raises(StepLimitExceeded):
        run_sort(backend, schedule, grid, max_steps=1, raise_on_cap=True)


def test_single_grid_backends_reject_batches(rng):
    grids = random_permutation_grid(4, batch=3, rng=rng)
    schedule = get_algorithm("snake_1")
    for name in ("reference", "mesh"):
        be = get_backend(name)
        assert not be.supports_batch
        with pytest.raises(DimensionError):
            run_sort(name, schedule, grids)


def test_batch_backends_match_per_grid_runs(rng):
    schedule = get_algorithm("snake_2")
    grids = random_permutation_grid(6, batch=5, rng=rng)
    batched = run_sort("vectorized", schedule, grids)
    assert batched.steps.shape == (5,)
    for i in range(5):
        single = run_sort("vectorized", schedule, grids[i])
        assert batched.steps[i] == single.steps_scalar()
        np.testing.assert_array_equal(batched.final[i], single.final)
