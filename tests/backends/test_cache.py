"""Compiled-schedule LRU cache: hits, misses, keying, eviction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    CompiledSchedule,
    compiled_schedule,
    run_sort,
    schedule_cache_clear,
    schedule_cache_info,
)
from repro.core.algorithms import get_algorithm
from repro.randomness import random_permutation_grid


@pytest.fixture(autouse=True)
def clean_cache():
    schedule_cache_clear()
    yield
    schedule_cache_clear()


def test_repeat_compilation_hits_cache():
    schedule = get_algorithm("snake_1")
    first = compiled_schedule(schedule, 6)
    info = schedule_cache_info()
    assert (info.hits, info.misses, info.currsize) == (0, 1, 1)
    second = compiled_schedule(schedule, 6)
    assert second is first
    info = schedule_cache_info()
    assert (info.hits, info.misses, info.currsize) == (1, 1, 1)


def test_cache_keyed_by_algorithm_and_shape():
    snake = get_algorithm("snake_1")
    row = get_algorithm("row_major_row_first")
    a = compiled_schedule(snake, 6)
    b = compiled_schedule(snake, 8)
    c = compiled_schedule(row, 6)
    d = compiled_schedule(snake, 6, 8)  # rectangle: distinct from the square
    assert len({id(x) for x in (a, b, c, d)}) == 4
    assert schedule_cache_info().currsize == 4
    assert compiled_schedule(snake, 6, 8) is d


def test_square_is_explicit_cols_equal_rows():
    schedule = get_algorithm("snake_1")
    assert compiled_schedule(schedule, 6) is compiled_schedule(schedule, 6, 6)


def test_direct_construction_bypasses_cache():
    schedule = get_algorithm("snake_1")
    cached = compiled_schedule(schedule, 6)
    fresh = CompiledSchedule(schedule, 6)
    assert fresh is not cached
    assert schedule_cache_info().currsize == 1


def test_structurally_equal_schedules_share_an_entry():
    a = get_algorithm("snake_1")
    b = get_algorithm("snake_1")
    compiled_schedule(a, 6)
    compiled_schedule(b, 6)
    info = schedule_cache_info()
    assert info.misses == 1 and info.hits == 1


def test_driver_runs_reuse_compilations(rng):
    schedule = get_algorithm("row_major_row_first")
    for _ in range(4):
        run_sort("vectorized", schedule, random_permutation_grid(6, rng=rng))
    info = schedule_cache_info()
    assert info.misses == 1
    assert info.hits >= 3


def test_clear_resets_statistics():
    compiled_schedule(get_algorithm("snake_1"), 6)
    schedule_cache_clear()
    assert schedule_cache_info() == (0, 0, schedule_cache_info().maxsize, 0)


def test_cached_compilation_still_sorts(rng):
    schedule = get_algorithm("snake_1")
    grid = random_permutation_grid(6, rng=rng)
    work = grid.copy()
    compiled = compiled_schedule(schedule, 6)
    compiled.run(work, 8)
    again = grid.copy()
    compiled_schedule(schedule, 6).run(again, 8)
    np.testing.assert_array_equal(work, again)
