"""Backend registry: resolution, caching, registration, error paths."""

from __future__ import annotations

import pytest

from repro.backends import (
    Backend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.backends import registry as registry_module
from repro.errors import DimensionError


def test_builtin_backends_are_registered():
    names = available_backends()
    assert set(names) >= {"vectorized", "reference", "mesh", "rect"}


@pytest.mark.parametrize("name", ["vectorized", "reference", "mesh", "rect"])
def test_builtin_backends_resolve(name):
    be = get_backend(name)
    assert isinstance(be, Backend)
    assert be.name == name


def test_resolution_is_cached():
    assert get_backend("vectorized") is get_backend("vectorized")


def test_backend_instances_pass_through():
    be = get_backend("mesh")
    assert get_backend(be) is be


def test_unknown_backend_lists_available():
    with pytest.raises(DimensionError, match="unknown backend 'gpu'"):
        get_backend("gpu")
    try:
        get_backend("gpu")
    except DimensionError as exc:
        assert "vectorized" in str(exc)


def test_duplicate_registration_raises():
    with pytest.raises(DimensionError, match="already registered"):
        register_backend("vectorized", lambda: get_backend("vectorized"))


def test_register_and_shadow_custom_backend():
    calls = []

    def factory() -> Backend:
        calls.append(1)
        return get_backend("vectorized")

    try:
        register_backend("test-double", factory)
        assert "test-double" in available_backends()
        assert get_backend("test-double") is get_backend("vectorized")
        assert get_backend("test-double") is get_backend("vectorized")
        assert len(calls) == 1  # factory runs once, then the instance is cached

        register_backend("test-double", lambda: get_backend("mesh"), replace=True)
        assert get_backend("test-double") is get_backend("mesh")
    finally:
        registry_module._FACTORIES.pop("test-double", None)
        registry_module._INSTANCES.pop("test-double", None)
    assert "test-double" not in available_backends()
