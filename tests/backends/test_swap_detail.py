"""Per-step swap counting is an opt-in observer capability.

The vectorized kernels must diff the whole (possibly batched) grid to count
swaps, so the driver only asks for them when the attached observer declares
``wants_swap_detail``.  Cell-level backends count swaps for free and always
report them.
"""

from __future__ import annotations

import pytest

from repro.backends import get_backend, run_sort, wants_swap_detail
from repro.core.algorithms import get_algorithm
from repro.obs.events import (
    CompositeObserver,
    Observer,
    RecordingObserver,
    StepEvent,
)
from repro.randomness import random_permutation_grid


class PlainStepCollector(Observer):
    """An observer that records steps without opting into swap detail."""

    def __init__(self):
        self.steps: list[StepEvent] = []

    def on_step(self, event: StepEvent) -> None:
        self.steps.append(event)


def test_observer_base_does_not_want_swap_detail():
    assert Observer().wants_swap_detail is False
    assert wants_swap_detail(PlainStepCollector()) is False
    assert wants_swap_detail(RecordingObserver()) is True


def test_composite_opts_in_when_any_child_does():
    plain = PlainStepCollector()
    assert not wants_swap_detail(CompositeObserver([plain]))
    assert wants_swap_detail(CompositeObserver([plain, RecordingObserver()]))


def test_vectorized_omits_swaps_without_opt_in(rng):
    obs = PlainStepCollector()
    grid = random_permutation_grid(6, rng=rng)
    run_sort("vectorized", get_algorithm("snake_1"), grid, observer=obs)
    assert obs.steps
    assert all(event.swaps is None for event in obs.steps)


def test_vectorized_reports_swaps_on_opt_in(rng):
    rec = RecordingObserver()
    grid = random_permutation_grid(6, rng=rng)
    run_sort("vectorized", get_algorithm("snake_1"), grid, observer=rec)
    assert rec.steps
    assert all(event.swaps is not None for event in rec.steps)
    assert sum(event.swaps for event in rec.steps) > 0


@pytest.mark.parametrize("backend", ["reference", "mesh"])
def test_cell_level_backends_always_count(backend, rng):
    assert get_backend(backend).counts_swaps
    obs = PlainStepCollector()
    grid = random_permutation_grid(6, rng=rng)
    run_sort(backend, get_algorithm("snake_1"), grid, observer=obs)
    assert obs.steps
    assert all(event.swaps is not None for event in obs.steps)


def test_swap_totals_agree_across_backends(rng):
    grid = random_permutation_grid(6, rng=rng)
    schedule = get_algorithm("row_major_row_first")
    totals = {}
    for backend in ("vectorized", "reference", "mesh"):
        rec = RecordingObserver()
        run_sort(backend, schedule, grid, observer=rec)
        totals[backend] = sum(event.swaps for event in rec.steps)
    assert totals["vectorized"] == totals["reference"] == totals["mesh"]
    assert totals["vectorized"] > 0
