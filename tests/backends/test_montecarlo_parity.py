"""Monte-Carlo samplers give identical results on every backend.

Grids are drawn in the same batched RNG order regardless of backend, and
the backends agree step-for-step, so the same seed must yield bit-identical
samples whether the batch runs on the vectorized kernels or trial-by-trial
on a single-grid backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.experiments.config import ExperimentConfig
from repro.experiments.montecarlo import (
    _sort_steps_values as sample_sort_steps,
    _statistic_values as sample_statistic_after_steps,
)
from repro.zeroone.weights import first_column_zeros


def test_sample_sort_steps_backend_parity():
    baseline = sample_sort_steps("snake_1", 6, 8, seed=123)
    for backend in ("reference", "mesh", "rect"):
        steps = sample_sort_steps("snake_1", 6, 8, seed=123, backend=backend)
        np.testing.assert_array_equal(steps, baseline)


def test_sample_sort_steps_parity_across_batch_boundaries():
    baseline = sample_sort_steps("row_major_row_first", 4, 7, seed=9, batch_size=3)
    again = sample_sort_steps(
        "row_major_row_first", 4, 7, seed=9, batch_size=3, backend="reference"
    )
    np.testing.assert_array_equal(again, baseline)


def test_sample_statistic_backend_parity():
    def stat(grids):
        return np.atleast_1d(np.asarray(first_column_zeros(grids)))

    baseline = sample_statistic_after_steps("snake_1", 6, 10, stat, seed=77)
    for backend in ("reference", "rect"):
        values = sample_statistic_after_steps(
            "snake_1", 6, 10, stat, seed=77, backend=backend
        )
        np.testing.assert_array_equal(values, baseline)


def test_experiment_config_validates_backend():
    cfg = ExperimentConfig(backend="reference")
    assert cfg.backend == "reference"
    with pytest.raises(DimensionError, match="unknown backend"):
        ExperimentConfig(backend="no-such-backend")
