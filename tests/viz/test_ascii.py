"""Tests for the ASCII renderers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.viz.ascii import ascii_series, filmstrip, render_grid, render_zero_one


class TestRenderZeroOne:
    def test_basic(self):
        grid = np.array([[0, 1], [1, 0]])
        assert render_zero_one(grid) == "#.\n.#"

    def test_custom_chars(self):
        grid = np.array([[0, 1]] * 2)
        assert render_zero_one(grid, zero="0", one="1") == "01\n01"

    def test_rejects_batch(self):
        with pytest.raises(DimensionError):
            render_zero_one(np.zeros((2, 3, 3)))


class TestRenderGrid:
    def test_alignment(self):
        grid = np.array([[1, 100], [10, 2]])
        text = render_grid(grid)
        lines = text.splitlines()
        assert lines[0] == "  1 100"
        assert lines[1] == " 10   2"


class TestFilmstrip:
    def test_side_by_side(self):
        a = np.zeros((2, 2), dtype=int)
        b = np.ones((2, 2), dtype=int)
        text = filmstrip([a, b], labels=["t0", "t1"])
        lines = text.splitlines()
        assert lines[0].startswith("t0")
        assert "##" in lines[1] and ".." in lines[1]

    def test_label_count_checked(self):
        with pytest.raises(DimensionError):
            filmstrip([np.zeros((2, 2))], labels=["a", "b"])

    def test_empty_rejected(self):
        with pytest.raises(DimensionError):
            filmstrip([])


class TestAsciiSeries:
    def test_renders_legend_and_axes(self):
        text = ascii_series([1, 2, 3], {"alpha": [1, 2, 3], "beta": [3, 2, 1]})
        assert "legend:" in text
        assert "a=alpha" in text
        assert "x: [1, 3]" in text

    def test_constant_series_ok(self):
        text = ascii_series([1, 2], {"flat": [5, 5]})
        assert "f" in text

    def test_length_mismatch(self):
        with pytest.raises(DimensionError):
            ascii_series([1, 2], {"s": [1, 2, 3]})

    def test_empty_rejected(self):
        with pytest.raises(DimensionError):
            ascii_series([], {})
