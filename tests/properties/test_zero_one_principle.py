"""Property tests built on the 0-1 principle and comparator-network facts.

An oblivious comparison-exchange procedure sorts all inputs iff it sorts all
0-1 inputs; these tests exploit that plus monotonicity: applying any
schedule commutes with monotone maps, which hypothesis can exercise cheaply.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedules import build_shearsort
from repro.core.algorithms import ALGORITHM_NAMES, get_algorithm
from repro.core.engine import run_fixed_steps, run_until_sorted
from repro.randomness import random_permutation_grid

algorithms = st.sampled_from(ALGORITHM_NAMES)


def _fit_side(name: str, side: int) -> int:
    if get_algorithm(name).requires_even_side and side % 2:
        return side + 1
    return side


@given(
    name=algorithms,
    side=st.sampled_from([4, 5, 6]),
    seed=st.integers(0, 2**31),
    steps=st.integers(1, 16),
    threshold=st.integers(1, 15),
)
@settings(max_examples=40)
def test_schedules_commute_with_thresholding(name, side, seed, steps, threshold):
    """For a comparator network, thresholding before or after running the
    network yields the same 0-1 matrix (min/max commute with monotone maps).
    This single property pins every kernel's comparator semantics."""
    side = _fit_side(name, side)
    threshold = threshold % (side * side) + 1
    schedule = get_algorithm(name)
    grid = random_permutation_grid(side, rng=seed)
    after_then_threshold = (run_fixed_steps(schedule, grid, steps) >= threshold).astype(np.int8)
    threshold_then_after = run_fixed_steps(schedule, (grid >= threshold).astype(np.int8), steps)
    np.testing.assert_array_equal(after_then_threshold, threshold_then_after)


@given(
    name=algorithms,
    side=st.sampled_from([4, 6]),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=30)
def test_zero_one_time_lower_bounds_permutation_time(name, side, seed):
    """The paper's reduction: sorting A01 takes no longer than sorting A
    (every comparator acts identically or earlier-finishing on A01)."""
    schedule = get_algorithm(name)
    grid = random_permutation_grid(side, rng=seed)
    t_perm = run_until_sorted(schedule, grid).steps_scalar()
    zeros = side * side // 2
    a01 = (grid >= zeros).astype(np.int8)
    t_01 = run_until_sorted(schedule, a01).steps_scalar()
    assert t_01 <= t_perm


@given(side=st.sampled_from([4, 5, 8]), seed=st.integers(0, 2**31), steps=st.integers(1, 20))
@settings(max_examples=25)
def test_shearsort_commutes_with_thresholding(side, seed, steps):
    schedule = build_shearsort(side=side)
    grid = random_permutation_grid(side, rng=seed)
    threshold = (seed % (side * side)) + 1
    a = (run_fixed_steps(schedule, grid, steps) >= threshold).astype(np.int8)
    b = run_fixed_steps(schedule, (grid >= threshold).astype(np.int8), steps)
    np.testing.assert_array_equal(a, b)


@given(
    name=algorithms,
    side=st.sampled_from([4, 6]),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=25)
def test_relabeling_invariance(name, side, seed):
    """Step counts depend only on the relative order of the values."""
    schedule = get_algorithm(name)
    grid = random_permutation_grid(side, rng=seed)
    t1 = run_until_sorted(schedule, grid).steps_scalar()
    t2 = run_until_sorted(schedule, grid * 7 + 3).steps_scalar()
    assert t1 == t2


@given(
    name=algorithms,
    side=st.sampled_from([4, 6]),
    seed=st.integers(0, 2**31),
    steps=st.integers(1, 12),
)
@settings(max_examples=20)
def test_fault_engine_healthy_path_equals_engine(name, side, seed, steps):
    """The fault injector with no faults is the engine, on any input."""
    from repro.core.faults import FaultyCompiledSchedule

    schedule = get_algorithm(name)
    grid = random_permutation_grid(side, rng=seed)
    vec = run_fixed_steps(schedule, grid, steps)
    work = grid.copy()
    faulty = FaultyCompiledSchedule(schedule, side)
    for t in range(1, steps + 1):
        faulty.apply_step(work, t)
    np.testing.assert_array_equal(vec, work)
