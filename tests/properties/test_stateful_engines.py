"""Stateful cross-validation: arbitrary op sequences on two executors.

A hypothesis state machine drives the vectorized engine and the pure-Python
reference machine with the *same* randomly chosen comparator ops (not just
the five paper schedules — any valid op), asserting cell-for-cell equality
after every op.  This covers op sequencing and interleaving patterns the
fixed schedules never produce.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.engine import CompiledSchedule
from repro.core.reference import ReferenceMachine
from repro.core.schedule import FORWARD, REVERSE, LineOp, Schedule, Step, WrapOp
from repro.randomness import random_permutation_grid

SIDE = 6

line_ops = st.builds(
    LineOp,
    axis=st.sampled_from(["row", "col"]),
    offset=st.sampled_from([0, 1]),
    direction=st.sampled_from([FORWARD, REVERSE]),
    lines=st.sampled_from(["all", "odd", "even"]),
)
ops = st.one_of(line_ops, st.just(WrapOp()))


def _single_op_schedule(op) -> Schedule:
    return Schedule(name="fuzz", steps=(Step(op),), order="row_major")


class EnginesAgree(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 2**31))
    def setup(self, seed):
        grid = random_permutation_grid(SIDE, rng=seed)
        self.vector = grid.copy()
        self.reference = ReferenceMachine(_single_op_schedule(WrapOp()), grid)

    @rule(op=ops)
    def apply_op(self, op):
        schedule = _single_op_schedule(op)
        CompiledSchedule(schedule, SIDE).apply_step(self.vector, 1)
        # drive the reference machine with the same op
        ref = ReferenceMachine(schedule, self.reference.as_array())
        ref.step()
        self.reference = ref

    @invariant()
    def grids_equal(self):
        if not hasattr(self, "vector"):
            return
        np.testing.assert_array_equal(self.vector, self.reference.as_array())

    @invariant()
    def multiset_preserved(self):
        if not hasattr(self, "vector"):
            return
        assert sorted(self.vector.ravel().tolist()) == list(range(SIDE * SIDE))


EnginesAgree.TestCase.settings = settings(
    max_examples=20, stateful_step_count=15, deadline=None
)
TestEnginesAgree = EnginesAgree.TestCase
