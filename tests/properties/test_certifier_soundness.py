"""Soundness of the static 0-1 certifier against the dynamic executors.

A CERTIFIED verdict is a *proof*: every 0-1 input reaches target order
within ``step_bound`` steps, hence (0-1 principle) every input does.  These
properties confront that proof with the real kernels — any divergence
means either the comparator-IR interpreter or an executor is wrong, which
is exactly the class of bug a reproduction repo most needs to catch.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.semantics import certify_sortedness
from repro.core.engine import run_until_sorted
from repro.randomness import random_permutation_grid
from repro.schedules import available_families, build_schedule, get_family
from repro.verify import differential_run

#: Every (family, side) pair whose exhaustive certificate the registry
#: declares, restricted to square topology (the batch executors' home).
CERTIFIED_SQUARE_PAIRS = [
    (name, side)
    for name in available_families()
    if get_family(name).topology == "square"
    for side in get_family(name).certified_sides
]


@given(
    pair=st.sampled_from(CERTIFIED_SQUARE_PAIRS),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=40, deadline=None)
def test_certified_schedules_sort_within_the_certified_bound(pair, seed):
    name, side = pair
    schedule = build_schedule(name, side)
    cert = certify_sortedness(schedule, side, side)  # cached across examples
    assert cert.certified
    grid = random_permutation_grid(side, rng=seed)
    outcome = run_until_sorted(schedule, grid)
    steps = outcome.steps_scalar()
    assert 0 <= steps <= cert.step_bound, (name, side, steps, cert.step_bound)


@given(
    pair=st.sampled_from(CERTIFIED_SQUARE_PAIRS),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=15, deadline=None)
def test_certified_schedules_never_fail_a_differential_run(pair, seed):
    name, side = pair
    schedule = build_schedule(name, side)
    assert certify_sortedness(schedule, side, side).certified
    grid = random_permutation_grid(side, rng=seed)
    report = differential_run(schedule, grid)
    assert report.ok, report.describe()
