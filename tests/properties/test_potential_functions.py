"""Property tests for the potential statistics against brute-force recounts."""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.zeroone.trackers import (
    y1_statistic,
    y2_statistic,
    y3_statistic,
    z1_statistic,
    z2_statistic,
    z3_statistic,
    z4_statistic,
)
from repro.zeroone.weights import column_weights, column_zeros, m_statistic


def grid01(side: int):
    return arrays(np.int8, (side, side), elements=st.integers(0, 1))


def _brute_z1(grid: np.ndarray) -> int:
    side = grid.shape[0]
    total = 0
    for c in range(0, side - 1, 2):
        total += int((grid[:, c] == 0).sum())
    for r in range(1, side, 2):
        total += int(grid[r, side - 1] == 0)
    return total


def _brute_z3(grid: np.ndarray) -> int:
    side = grid.shape[0]
    total = 0
    for c in range(1, side, 2):
        total += int((grid[:, c] == 0).sum())
    for r in range(0, side, 2):
        total += int(grid[r, 0] == 0)
    return total


@given(grid=grid01(6))
def test_z1_matches_bruteforce_even(grid):
    assert z1_statistic(grid) == _brute_z1(grid)


@given(grid=grid01(7))
def test_z1_matches_bruteforce_odd(grid):
    assert z1_statistic(grid) == _brute_z1(grid)


@given(grid=grid01(6))
def test_z3_matches_bruteforce(grid):
    assert z3_statistic(grid) == _brute_z3(grid)


@given(grid=grid01(6))
def test_z_pairs_differ_only_in_edge_rows(grid):
    """Z2 - Z1 counts last-column parity swap; bounded by side/2."""
    side = grid.shape[0]
    assert abs(z2_statistic(grid) - z1_statistic(grid)) <= (side + 1) // 2
    assert abs(z4_statistic(grid) - z3_statistic(grid)) <= (side + 1) // 2


@given(grid=grid01(6))
def test_y1_is_odd_column_zeros(grid):
    assert y1_statistic(grid) == int((grid[:, 0::2] == 0).sum())


@given(grid=grid01(6))
def test_y2_y3_partition(grid):
    """Y2 and Y3 count the same interior plus complementary edge cells;
    their sum equals 2*interior + all edge-column cells of cols 1 and 2n."""
    side = grid.shape[0]
    interior = int((grid[:, 1 : side - 1 : 2] == 0).sum())
    col1 = int((grid[:, 0] == 0).sum())
    coln = int((grid[:, side - 1] == 0).sum())
    assert y2_statistic(grid) + y3_statistic(grid) == 2 * interior + col1 + coln


@given(grid=grid01(8))
def test_weights_sum_to_total(grid):
    assert int(column_weights(grid).sum() + column_zeros(grid).sum()) == grid.size


@given(grid=grid01(6))
def test_m_statistic_bounds(grid):
    side = grid.shape[0]
    m = m_statistic(grid)
    assert -(side // 2) - 1 <= m <= side - side // 2 - 1
