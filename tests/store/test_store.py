"""Content-addressed result store: durability, corruption, eviction, registry."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.errors import StoreError
from repro.obs import RecordingObserver, use_observer
from repro.store import (
    LocalResultStore,
    MemoryResultStore,
    ResultStore,
    available_stores,
    decode_result,
    encode_result,
    payload_integrity,
    register_store,
    resolve_store,
)

SPEC = CampaignSpec("snake_1", side=6, trials=40, seed=99, shard_size=8)


def _payload(values=(1, 2, 3), **meta) -> dict:
    base = {"algorithm": "snake_1", "side": 6}
    base.update(meta)
    return {"values": list(values), "dtype": "int64", "meta": base}


class TestCodec:
    def test_round_trip_is_bit_identical(self):
        result = run_campaign(SPEC, workers=1)
        decoded = decode_result(encode_result(result))
        np.testing.assert_array_equal(decoded.values, result.values)
        assert decoded.values.dtype == result.values.dtype
        assert decoded.values_digest == result.values_digest
        assert decoded.stats.mean == result.stats.mean

    def test_float_payload_round_trips_exactly(self):
        spec = CampaignSpec(
            "snake_1", side=4, trials=24, seed=3, shard_size=8,
            kind="statistic", statistic=np.mean, num_steps=2,
        )
        result = run_campaign(spec, workers=1)
        assert result.values.dtype == np.float64
        # Through actual JSON text, not just python dict round trip.
        blob = json.dumps(encode_result(result))
        decoded = decode_result(json.loads(blob))
        np.testing.assert_array_equal(decoded.values, result.values)
        assert decoded.values_digest == result.values_digest

    def test_partial_result_refused(self, tmp_path):
        partial = run_campaign(
            SPEC, workers=1, checkpoint_dir=tmp_path, max_shards=2
        )
        with pytest.raises(StoreError, match="partial"):
            encode_result(partial)

    def test_stats_recomputed_not_stored(self):
        result = run_campaign(SPEC, workers=1)
        payload = encode_result(result)
        assert "stats" not in payload

    def test_integrity_changes_on_any_bit(self):
        payload = _payload()
        digest = payload_integrity(payload)
        tweaked = _payload(values=(1, 2, 4))
        assert payload_integrity(tweaked) != digest

    def test_undecodable_payload_raises_store_error(self):
        with pytest.raises(StoreError, match="undecodable"):
            decode_result({"values": [1], "dtype": "not-a-dtype", "meta": {}})


class TestLocalStore:
    def test_miss_then_put_then_hit(self, tmp_path):
        store = LocalResultStore(tmp_path)
        assert store.get("ab12cd34ef567890") is None
        store.put("ab12cd34ef567890", _payload())
        assert store.get("ab12cd34ef567890") == _payload()
        assert "ab12cd34ef567890" in store
        assert store.fingerprints() == ["ab12cd34ef567890"]

    def test_layout_sharded_by_prefix(self, tmp_path):
        store = LocalResultStore(tmp_path)
        store.put("ab12cd34ef567890", _payload())
        assert (tmp_path / "ab" / "ab12cd34ef567890" / "result.json").exists()

    def test_manifest_written_alongside(self, tmp_path):
        store = LocalResultStore(tmp_path)
        store.put("ab12cd34ef567890", _payload(), manifest={"kind": "campaign"})
        manifest = tmp_path / "ab" / "ab12cd34ef567890" / "manifest.json"
        assert json.loads(manifest.read_text())["kind"] == "campaign"

    def test_corrupted_payload_quarantined_as_miss(self, tmp_path):
        """Bit rot degrades to a cache miss — never an error, never a wrong
        value served."""
        store = LocalResultStore(tmp_path)
        store.put("ab12cd34ef567890", _payload())
        path = store.result_path("ab12cd34ef567890")
        path.write_text(path.read_text().replace("1, 2, 3", "1, 2, 4"))
        rec = RecordingObserver()
        with use_observer(rec):
            assert store.get("ab12cd34ef567890") is None
        assert [e.op for e in rec.store_events] == ["quarantine", "miss"]
        assert "ab12cd34ef567890" not in store
        quarantined = list((tmp_path / "quarantine").glob("*.json"))
        assert len(quarantined) == 1

    def test_wrong_fingerprint_quarantined(self, tmp_path):
        """An entry filed under the wrong key (e.g. a manual rename) is
        corruption, not a hit."""
        store = LocalResultStore(tmp_path)
        store.put("ab12cd34ef567890", _payload())
        src = store.entry_dir("ab12cd34ef567890")
        dst = store.entry_dir("ff99aa11bb22cc33")
        dst.parent.mkdir(parents=True, exist_ok=True)
        src.rename(dst)
        assert store.get("ff99aa11bb22cc33") is None

    def test_garbage_file_quarantined(self, tmp_path):
        store = LocalResultStore(tmp_path)
        path = store.result_path("ab12cd34ef567890")
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert store.get("ab12cd34ef567890") is None
        assert list((tmp_path / "quarantine").glob("*.json"))

    def test_torn_write_tmp_file_is_ignored_and_swept(self, tmp_path):
        """A writer killed mid-put leaves only a tmp file: reads miss, and
        the next put of that fingerprint sweeps the debris."""
        store = LocalResultStore(tmp_path)
        entry = store.entry_dir("ab12cd34ef567890")
        entry.mkdir(parents=True)
        torn = entry / "result.json.tmp-9999"
        torn.write_text('{"half an envel')
        assert store.get("ab12cd34ef567890") is None
        assert torn.exists()  # a miss does not mutate the tree
        store.put("ab12cd34ef567890", _payload())
        assert not torn.exists()
        assert store.get("ab12cd34ef567890") == _payload()

    def test_delete(self, tmp_path):
        store = LocalResultStore(tmp_path)
        store.put("ab12cd34ef567890", _payload())
        assert store.delete("ab12cd34ef567890") is True
        assert store.delete("ab12cd34ef567890") is False
        assert store.get("ab12cd34ef567890") is None

    def test_put_is_idempotent_overwrite(self, tmp_path):
        store = LocalResultStore(tmp_path)
        store.put("ab12cd34ef567890", _payload())
        store.put("ab12cd34ef567890", _payload(values=(7, 8, 9)))
        assert store.get("ab12cd34ef567890") == _payload(values=(7, 8, 9))


class TestEviction:
    def _fill(self, store: LocalResultStore, n: int) -> list[str]:
        fps = [f"{i:02x}{'0' * 14}" for i in range(n)]
        for i, fp in enumerate(fps):
            store.put(fp, _payload(values=(i,) * 8))
        return fps

    def test_eviction_under_size_cap(self, tmp_path):
        store = LocalResultStore(tmp_path, max_bytes=1)
        rec = RecordingObserver()
        with use_observer(rec):
            fps = self._fill(store, 3)
        # Cap of 1 byte: every put evicts all prior entries; the newest
        # entry always survives (a put never evicts itself).
        assert store.fingerprints() == [fps[-1]]
        assert [e.op for e in rec.store_events].count("evict") == 2

    def test_lru_victim_is_least_recently_used(self, tmp_path):
        # Each entry is ~250 bytes: the cap holds two entries but not three.
        store = LocalResultStore(tmp_path, max_bytes=600)
        fp_a, fp_b = self._fill(store, 2)
        assert set(store.fingerprints()) == {fp_a, fp_b}
        store.get(fp_a)  # touch A: B becomes the LRU victim
        fp_c = "ff" + "0" * 14
        store.put(fp_c, _payload(values=(9,) * 8))
        assert fp_b not in store.fingerprints()
        assert set(store.fingerprints()) == {fp_a, fp_c}

    def test_no_cap_never_evicts(self, tmp_path):
        store = LocalResultStore(tmp_path)
        fps = self._fill(store, 5)
        assert store.fingerprints() == sorted(fps)

    def test_bad_cap_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="max_bytes"):
            LocalResultStore(tmp_path, max_bytes=0)


class TestIndex:
    def test_index_is_rebuildable(self, tmp_path):
        """Deleting index.json never loses results — it is an acceleration
        structure reconstructed from the tree."""
        store = LocalResultStore(tmp_path)
        store.put("ab12cd34ef567890", _payload())
        store.index_path.unlink()
        assert store.get("ab12cd34ef567890") == _payload()
        assert store.total_bytes() > 0

    def test_corrupt_index_rebuilt(self, tmp_path):
        store = LocalResultStore(tmp_path)
        store.put("ab12cd34ef567890", _payload())
        store.index_path.write_text("{broken")
        assert store.total_bytes() > 0  # served via in-memory rebuild
        assert store.get("ab12cd34ef567890") == _payload()  # hit rewrites it
        doc = json.loads(store.index_path.read_text())
        assert "ab12cd34ef567890" in doc["entries"]

    def test_logical_clock_persists_and_advances(self, tmp_path):
        store = LocalResultStore(tmp_path)
        store.put("ab12cd34ef567890", _payload())
        clock1 = json.loads(store.index_path.read_text())["clock"]
        # A second store instance (fresh process, same tree) continues the
        # clock rather than restarting it.
        LocalResultStore(tmp_path).get("ab12cd34ef567890")
        clock2 = json.loads(store.index_path.read_text())["clock"]
        assert clock2 > clock1


class TestRegistryAndResolve:
    def test_builtin_schemes(self):
        assert "local" in available_stores()
        assert "memory" in available_stores()

    def test_resolve_passthrough_and_paths(self, tmp_path):
        store = LocalResultStore(tmp_path)
        assert resolve_store(store) is store
        assert isinstance(resolve_store(tmp_path), LocalResultStore)
        assert isinstance(resolve_store(str(tmp_path)), LocalResultStore)

    def test_resolve_scheme_string(self, tmp_path):
        store = resolve_store(f"local:{tmp_path}")
        assert isinstance(store, LocalResultStore)
        assert store.root == Path(str(tmp_path))

    def test_memory_scheme_shares_named_instances(self):
        a = resolve_store("memory:test-shared")
        b = resolve_store("memory:test-shared")
        assert a is b
        a.put("ab12", _payload())
        assert b.get("ab12") == _payload()
        a.delete("ab12")

    def test_register_custom_scheme(self, tmp_path):
        calls: list[str] = []

        def factory(location: str) -> ResultStore:
            calls.append(location)
            return MemoryResultStore(location)

        register_store("teststore", factory)
        try:
            store = resolve_store("teststore:somewhere")
            assert isinstance(store, MemoryResultStore)
            assert calls == ["somewhere"]
            with pytest.raises(StoreError, match="already registered"):
                register_store("teststore", factory)
            register_store("teststore", factory, replace=True)
        finally:
            from repro.store.base import _FACTORIES

            _FACTORIES.pop("teststore", None)

    def test_resolve_rejects_garbage(self):
        with pytest.raises(StoreError, match="store must be"):
            resolve_store(123)
        with pytest.raises(StoreError, match="store must be"):
            resolve_store("")


class TestMemoryStore:
    def test_round_trip_and_events(self):
        store = MemoryResultStore("t")
        rec = RecordingObserver()
        with use_observer(rec):
            assert store.get("ab") is None
            store.put("ab", _payload())
            assert store.get("ab") == _payload()
        assert [e.op for e in rec.store_events] == ["miss", "put", "hit"]
        assert rec.store_events[1].bytes is not None

    def test_payloads_are_isolated_copies(self):
        """Stored blobs are JSON text: mutating a returned payload cannot
        corrupt the cache (same contract as a real object store)."""
        store = MemoryResultStore("t")
        store.put("ab", _payload())
        first = store.get("ab")
        first["values"].append(999)
        assert store.get("ab") == _payload()
