"""The cross-process FileLock primitive (leases + fingerprint single-flight)."""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.errors import LeaseError, ServiceError
from repro.store import LOCK_FORMAT, FileLock, LocalResultStore


def _write_foreign_lock(path, *, host="some-other-host", pid=None, heartbeat=0):
    """A lock body as another (possibly remote) owner would leave it."""
    body = {
        "format": LOCK_FORMAT,
        "owner": f"{host}:pid-{pid or 12345}",
        "host": host,
        "heartbeat": heartbeat,
    }
    if pid is not None:
        body["pid"] = pid
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(body), encoding="utf-8")


def _dead_pid() -> int:
    """A pid that does not exist on this machine."""
    pid = 2 ** 22 + os.getpid() % 1000
    while True:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return pid
        except OSError:
            pass
        pid += 1


class TestAcquireRelease:
    def test_exclusive_between_instances(self, tmp_path):
        path = tmp_path / "x.lock"
        a, b = FileLock(path), FileLock(path)
        assert a.try_acquire()
        assert not b.try_acquire()
        a.release()
        assert b.try_acquire()
        b.release()

    def test_body_records_owner(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock", owner="me")
        assert lock.try_acquire()
        body = lock.read_owner()
        assert body["format"] == LOCK_FORMAT
        assert body["owner"] == "me"
        assert body["pid"] == os.getpid()
        assert body["heartbeat"] == 0
        lock.release()
        assert lock.read_owner() is None

    def test_double_acquire_is_a_protocol_error(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        assert lock.try_acquire()
        with pytest.raises(LeaseError, match="already held"):
            lock.try_acquire()
        lock.release()

    def test_release_idempotent(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        lock.try_acquire()
        lock.release()
        lock.release()  # no-op, no error
        assert not lock.held

    def test_acquire_blocks_until_released(self, tmp_path):
        path = tmp_path / "x.lock"
        holder = FileLock(path)
        assert holder.try_acquire()
        release_after = threading.Timer(0.15, holder.release)
        release_after.start()
        waiter = FileLock(path, poll_interval=0.01)
        waited = waiter.acquire(timeout=5.0)
        assert waiter.held
        assert waited >= 0.05
        waiter.release()
        release_after.join()

    def test_acquire_timeout_raises_with_owner(self, tmp_path):
        path = tmp_path / "x.lock"
        holder = FileLock(path, owner="the-holder")
        assert holder.try_acquire()
        waiter = FileLock(path, poll_interval=0.01)
        with pytest.raises(LeaseError, match="the-holder") as excinfo:
            waiter.acquire(timeout=0.05)
        assert excinfo.value.owner == "the-holder"
        assert isinstance(excinfo.value, ServiceError)  # taxonomy nesting
        holder.release()

    def test_hold_context_manager(self, tmp_path):
        path = tmp_path / "x.lock"
        lock = FileLock(path)
        with lock.hold(timeout=1.0):
            assert lock.held
            assert path.exists()
        assert not lock.held
        assert not path.exists()


class TestHeartbeat:
    def test_bump_increments_logical_clock(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        lock.try_acquire()
        assert lock.bump() == 1
        assert lock.bump() == 2
        assert lock.read_owner()["heartbeat"] == 2
        lock.release()

    def test_bump_without_hold_raises(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        with pytest.raises(LeaseError, match="not held"):
            lock.bump()


class TestStaleReclaim:
    def test_dead_onhost_owner_reclaimed_immediately(self, tmp_path):
        import socket

        path = tmp_path / "x.lock"
        _write_foreign_lock(path, host=socket.gethostname(), pid=_dead_pid())
        lock = FileLock(path)  # no stale_after needed: pid probe is enough
        assert lock.try_acquire()
        assert lock.reclaimed
        lock.release()

    def test_live_onhost_owner_never_reclaimed(self, tmp_path):
        path = tmp_path / "x.lock"
        holder = FileLock(path)
        assert holder.try_acquire()
        # Even a zero staleness bound must not break a live on-host owner.
        contender = FileLock(path, stale_after=0.0, poll_interval=0.01)
        assert not contender.try_acquire()
        time.sleep(0.05)
        assert not contender.try_acquire()
        holder.release()

    def test_remote_owner_reclaimed_after_observed_silence(self, tmp_path):
        path = tmp_path / "x.lock"
        _write_foreign_lock(path, host="some-other-host")
        lock = FileLock(path, stale_after=0.05)
        assert not lock.try_acquire()  # first sight starts the clock
        time.sleep(0.1)
        assert lock.try_acquire()
        assert lock.reclaimed
        lock.release()

    def test_remote_heartbeat_resets_observation(self, tmp_path):
        path = tmp_path / "x.lock"
        _write_foreign_lock(path, host="some-other-host", heartbeat=0)
        lock = FileLock(path, stale_after=0.15)
        assert not lock.try_acquire()
        time.sleep(0.08)
        _write_foreign_lock(path, host="some-other-host", heartbeat=1)
        assert not lock.try_acquire()  # heartbeat moved: clock restarts
        time.sleep(0.08)
        assert not lock.try_acquire()  # still within the new window
        time.sleep(0.12)
        assert lock.try_acquire()
        lock.release()

    def test_no_stale_after_never_reclaims_remote(self, tmp_path):
        path = tmp_path / "x.lock"
        _write_foreign_lock(path, host="some-other-host")
        lock = FileLock(path, stale_after=None)
        assert not lock.try_acquire()
        time.sleep(0.05)
        assert not lock.try_acquire()

    def test_break_race_has_exactly_one_winner(self, tmp_path):
        path = tmp_path / "x.lock"
        _write_foreign_lock(path, host="some-other-host")
        locks = [FileLock(path, stale_after=0.03) for _ in range(8)]
        for lock in locks:
            assert not lock.try_acquire()  # start every observation clock
        time.sleep(0.08)
        barrier = threading.Barrier(len(locks))
        winners = []

        def contend(lock):
            barrier.wait()
            if lock.try_acquire():
                winners.append(lock)

        threads = [threading.Thread(target=contend, args=(lk,)) for lk in locks]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(winners) == 1
        winners[0].release()

    def test_torn_lock_body_ages_out_by_mtime(self, tmp_path):
        path = tmp_path / "x.lock"
        path.write_text("{not json", encoding="utf-8")
        lock = FileLock(path, stale_after=0.05)
        assert not lock.try_acquire()
        time.sleep(0.1)
        assert lock.try_acquire()
        lock.release()


class TestStoreFingerprintLock:
    def test_lock_lives_under_store_locks_dir(self, tmp_path):
        store = LocalResultStore(tmp_path)
        lock = store.fingerprint_lock("ab12cd")
        assert lock.path == tmp_path / "locks" / "ab12cd.lock"
        assert lock.try_acquire()
        assert (tmp_path / "locks" / "ab12cd.lock").exists()
        lock.release()

    def test_two_store_instances_exclude_each_other(self, tmp_path):
        a = LocalResultStore(tmp_path).fingerprint_lock("ff00")
        b = LocalResultStore(tmp_path).fingerprint_lock("ff00")
        assert a.try_acquire()
        assert not b.try_acquire()
        a.release()
        assert b.try_acquire()
        b.release()
