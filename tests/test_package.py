"""Package-level tests: imports, exports, version, randomness utilities."""

from __future__ import annotations

import importlib

import numpy as np
import pytest

import repro
from repro.errors import DimensionError
from repro.randomness import (
    as_generator,
    paper_zero_count,
    random_permutation_grid,
    random_zero_one_grid,
    spawn_generators,
)

SUBMODULES = [
    "repro.core",
    "repro.core.algorithms",
    "repro.core.engine",
    "repro.core.orders",
    "repro.core.phases",
    "repro.core.reference",
    "repro.core.runner",
    "repro.core.schedule",
    "repro.linear",
    "repro.mesh",
    "repro.zeroone",
    "repro.theory",
    "repro.baselines",
    "repro.experiments",
    "repro.viz",
]


class TestPackage:
    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize("module", SUBMODULES)
    def test_submodules_import(self, module):
        importlib.import_module(module)

    @pytest.mark.parametrize("module", SUBMODULES)
    def test_all_exports_exist(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.__all__ lists missing {name}"

    def test_top_level_api(self):
        assert len(repro.ALGORITHM_NAMES) == 5
        grid = repro.random_permutation_grid(4, rng=0)
        report = repro.sort_grid("snake_1", grid)
        assert report.outcome.all_completed


class TestRandomness:
    def test_permutation_is_permutation(self):
        grid = random_permutation_grid(5, rng=0)
        assert sorted(grid.ravel().tolist()) == list(range(25))

    def test_batch_shapes(self):
        assert random_permutation_grid(4, batch=3, rng=0).shape == (3, 4, 4)
        assert random_permutation_grid(4, batch=(2, 3), rng=0).shape == (2, 3, 4, 4)

    def test_reproducible(self):
        a = random_permutation_grid(6, rng=42)
        b = random_permutation_grid(6, rng=42)
        np.testing.assert_array_equal(a, b)

    def test_zero_one_counts(self):
        grid = random_zero_one_grid(5, rng=0)
        assert int((grid == 0).sum()) == paper_zero_count(5)

    def test_zero_one_custom_count(self):
        grid = random_zero_one_grid(4, zeros=3, rng=0)
        assert int((grid == 0).sum()) == 3

    def test_zero_one_invalid_count(self):
        with pytest.raises(DimensionError):
            random_zero_one_grid(4, zeros=17)

    def test_spawn_generators_independent(self):
        gens = spawn_generators(0, 3)
        draws = [g.integers(0, 2**32) for g in gens]
        assert len(set(draws)) == 3

    def test_spawn_from_generator(self):
        gens = spawn_generators(np.random.default_rng(0), 2)
        assert len(gens) == 2

    def test_as_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_bad_side(self):
        with pytest.raises(DimensionError):
            random_permutation_grid(0)


class TestErrors:
    def test_hierarchy(self):
        from repro.errors import (
            MissingWireError,
            ReproError,
            ScheduleValidationError,
            StepLimitExceeded,
            UnsupportedMeshError,
        )

        for exc in (
            DimensionError,
            MissingWireError,
            ScheduleValidationError,
            StepLimitExceeded(1, 1).__class__,
            UnsupportedMeshError,
        ):
            assert issubclass(exc, ReproError)

    def test_step_limit_message(self):
        from repro.errors import StepLimitExceeded

        err = StepLimitExceeded(100, 3)
        assert "100" in str(err) and "3" in str(err)
        assert err.steps_taken == 100 and err.unfinished == 3


class TestDoctests:
    """Docstring examples in the public entry points must stay runnable."""

    def test_runner_doctest(self):
        import doctest

        import repro.core.runner as runner

        results = doctest.testmod(runner, verbose=False)
        assert results.failed == 0
        assert results.attempted >= 1


def test_api_docs_in_sync():
    """docs/API.md must match the current public surface."""
    import subprocess
    import sys
    from pathlib import Path

    root = Path(__file__).resolve().parent.parent
    result = subprocess.run(
        [sys.executable, str(root / "tools" / "gen_api_docs.py"), "--check"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stdout + result.stderr
