"""The static schedule verifier: rule triggers, clean passes, report API."""

from __future__ import annotations

import pytest

from repro.analysis.schedule_check import (
    SCHEDULE_RULES,
    ScheduleReport,
    ScheduleViolation,
    check_schedule,
    op_comparators,
)
from repro.schedules import build_row_major_no_wrap, build_shearsort
from repro.core.algorithms import ALGORITHM_NAMES, get_algorithm
from repro.core.schedule import FORWARD, REVERSE, LineOp, Schedule, Step, WrapOp, comparator_pairs
from repro.errors import ScheduleValidationError, UnsupportedMeshError


def rules_of(report: ScheduleReport) -> set[str]:
    return {v.rule for v in report.violations}


def snake(*steps: Step, name: str = "custom") -> Schedule:
    return Schedule(name=name, steps=tuple(steps), order="snake")


# A minimal well-formed snake cycle: all-parity column pairs with both
# offsets, plus parity-split row steps (odd forward, even reverse).
def snake_cycle() -> tuple[Step, ...]:
    return (
        Step(LineOp("col", 0, FORWARD)),
        Step(LineOp("col", 1, FORWARD)),
        Step(
            LineOp("row", 0, FORWARD, lines="odd"),
            LineOp("row", 0, REVERSE, lines="even"),
        ),
        Step(
            LineOp("row", 1, FORWARD, lines="odd"),
            LineOp("row", 1, REVERSE, lines="even"),
        ),
    )


class TestCleanSchedules:
    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    @pytest.mark.parametrize("side", [4, 6, 8])
    def test_paper_algorithms_are_clean(self, name, side):
        report = check_schedule(get_algorithm(name), side)
        assert report.ok, report.describe()
        assert report.oblivious
        assert report.depth == len(get_algorithm(name).steps)
        assert report.comparators_per_cycle > 0

    @pytest.mark.parametrize("side", [2, 4, 5, 7])
    def test_shearsort_baseline_is_clean(self, side):
        report = check_schedule(build_shearsort(side=side), side)
        assert report.ok, report.describe()

    @pytest.mark.parametrize("name", ["snake_1", "snake_2", "snake_3"])
    def test_snake_algorithms_clean_at_odd_sides(self, name):
        assert check_schedule(get_algorithm(name), 5).ok

    def test_custom_minimal_snake_is_clean(self):
        report = check_schedule(snake(*snake_cycle()), 4)
        assert report.ok, report.describe()


class TestStructuralRules:
    def test_sch001_overlapping_ops_in_a_step(self):
        # offset-0 pairs (0,1),(2,3); offset-1 pairs (1,2): cell (r,1) clashes.
        clash = Step(LineOp("row", 0, FORWARD, lines="odd"),
                     LineOp("row", 1, FORWARD, lines="odd"))
        report = check_schedule(snake(clash, *snake_cycle()), 4)
        assert "SCH001" in rules_of(report)
        assert report.structural and not report.oblivious
        assert report.structural[0].step == 1

    def test_sch002_small_mesh(self):
        report = check_schedule(snake(*snake_cycle()), 1)
        assert rules_of(report) == {"SCH002"}
        with pytest.raises(UnsupportedMeshError):
            report.raise_for_structural()

    def test_sch002_odd_columns_for_even_side_schedule(self):
        schedule = get_algorithm("row_major_row_first")
        for rows, cols in [(5, 5), (6, 5)]:
            report = check_schedule(schedule, rows, cols)
            assert "SCH002" in rules_of(report)
        assert check_schedule(schedule, 5, 6).structural == []

    def test_sch003_foreign_op_type(self):
        class RogueOp:
            pass

        step = Step(LineOp("col", 0, FORWARD))
        object.__setattr__(step, "ops", (RogueOp(),))
        report = check_schedule(snake(step, *snake_cycle()), 4)
        assert "SCH003" in rules_of(report)
        with pytest.raises(ScheduleValidationError):
            report.raise_for_structural()

    def test_sch003_invalid_line_op_fields(self):
        bad = object.__new__(LineOp)
        for attr, value in [("axis", "diag"), ("offset", 0),
                            ("direction", 1), ("lines", "all")]:
            object.__setattr__(bad, attr, value)
        report = check_schedule(snake(Step(bad), *snake_cycle()), 4)
        assert "SCH003" in rules_of(report)


class TestPolicyRules:
    def test_sch004_wrap_outside_row_major(self):
        report = check_schedule(snake(Step(WrapOp()), *snake_cycle()), 4)
        assert "SCH004" in rules_of(report)
        assert report.oblivious  # policy violations keep obliviousness

    def test_sch005_row_major_without_wrap(self):
        report = check_schedule(build_row_major_no_wrap(), 4)
        assert "SCH005" in rules_of(report)
        assert not report.structural  # still compilable

    def test_sch006_reverse_column_step(self):
        steps = (Step(LineOp("col", 0, REVERSE)),) + snake_cycle()[1:]
        assert "SCH006" in rules_of(check_schedule(snake(*steps), 4))

    def test_sch006_snake_parity_direction(self):
        flipped = Step(
            LineOp("row", 0, REVERSE, lines="odd"),  # odd rows must be forward
            LineOp("row", 0, REVERSE, lines="even"),
        )
        steps = snake_cycle()[:2] + (flipped,) + snake_cycle()[3:]
        assert "SCH006" in rules_of(check_schedule(snake(*steps), 4))

    def test_sch006_uniform_row_direction_in_snake(self):
        steps = snake_cycle()[:2] + (
            Step(LineOp("row", 0, FORWARD)),
            Step(LineOp("row", 1, FORWARD)),
        )
        assert "SCH006" in rules_of(check_schedule(snake(*steps), 4))

    def test_sch007_parity_op_without_partner(self):
        lonely = Step(LineOp("row", 0, FORWARD, lines="odd"))
        steps = snake_cycle()[:2] + (lonely,) + snake_cycle()[3:]
        assert "SCH007" in rules_of(check_schedule(snake(*steps), 4))

    def test_sch008_missing_offset_in_cycle(self):
        steps = (
            Step(LineOp("col", 0, FORWARD)),  # even column offset never appears
            snake_cycle()[2],
            snake_cycle()[3],
        )
        report = check_schedule(snake(*steps), 4)
        assert "SCH008" in rules_of(report)

    def test_sch008_waived_for_length_two_lines(self):
        steps = (
            Step(LineOp("col", 0, FORWARD)),
            Step(
                LineOp("row", 0, FORWARD, lines="odd"),
                LineOp("row", 0, REVERSE, lines="even"),
            ),
            Step(
                LineOp("row", 1, FORWARD, lines="odd"),
                LineOp("row", 1, REVERSE, lines="even"),
            ),
        )
        # On a 2-row mesh the even column transposition is empty by
        # construction, so its absence is not a violation.
        assert "SCH008" not in rules_of(check_schedule(snake(*steps), 2, 4))

    def test_sch009_axis_without_comparators(self):
        rows_only = snake(snake_cycle()[2], snake_cycle()[3])
        report = check_schedule(rows_only, 4)
        assert "SCH009" in rules_of(report)


class TestReportApi:
    def test_catalog_covers_every_emitted_rule(self):
        assert set(SCHEDULE_RULES) == {f"SCH00{i}" for i in range(1, 10)}
        for severity, summary in SCHEDULE_RULES.values():
            assert severity in ("structural", "policy") and summary

    def test_describe_and_json_round_trip(self):
        report = check_schedule(build_row_major_no_wrap(), 4)
        text = report.describe()
        assert "SCH005" in text and "oblivious=True" in text
        blob = report.to_json()
        assert blob["name"] == "row_major_no_wrap"
        assert blob["oblivious"] is True
        assert blob["violations"][0]["rule"] == "SCH005"

    def test_violation_describe_mentions_step(self):
        v = ScheduleViolation("SCH001", "structural", "boom", step=3)
        assert "(step 3)" in v.describe()
        assert "step" not in ScheduleViolation("SCH009", "policy", "x").describe()

    def test_raise_for_structural_is_noop_when_clean(self):
        check_schedule(get_algorithm("snake_1"), 4).raise_for_structural()

    def test_op_comparators_matches_square_reference(self):
        # The rectangular generalization must agree with the core helper
        # wherever both are defined (square meshes).
        for name in ALGORITHM_NAMES:
            for side in (4, 6):
                for step in get_algorithm(name).steps:
                    for op in step.ops:
                        assert op_comparators(op, side, side) == comparator_pairs(op, side)


class TestPairOpParityCoverage:
    """SCH008/SCH009 see PairOp networks, not just LineOp cycles."""

    def test_coverage_patched_random_network_is_clean(self):
        from repro.schedules import build_random_network

        for seed in (0, 1, 7):
            schedule = build_random_network(side=4, seed=seed, steps=4)
            report = check_schedule(schedule, 1, 4)
            assert report.ok, report.describe()

    def test_patch_disabled_single_parity_draw_trips_sch008(self):
        from repro.schedules import build_random_network

        schedule = build_random_network(
            side=4, seed=1, steps=4, coverage_patch=False
        )
        report = check_schedule(schedule, 1, 4)
        assert rules_of(report) == {"SCH008"}, report.describe()
        # The certifier agrees with the lint: the uncovered parity class
        # leaves an adjacent inversion no comparator can ever fix.
        from repro.analysis.semantics import certify_sortedness

        cert = certify_sortedness(schedule, 1, 4)
        assert cert.refuted and cert.witness is not None

    def test_missing_axis_still_reported_for_pair_networks(self):
        from repro.core.schedule import PairOp

        # Vertical pairs only, on a genuinely 2-D mesh: the row axis has
        # no comparators anywhere in the cycle -> SCH009.
        schedule = Schedule(
            name="cols_only_pairs",
            steps=(
                Step(PairOp((0, 0), (1, 0)), PairOp((0, 1), (1, 1))),
                Step(PairOp((1, 0), (2, 0)), PairOp((1, 1), (2, 1))),
            ),
            order="row_major",
        )
        report = check_schedule(schedule, 3, 2)
        assert "SCH009" in rules_of(report), report.describe()
