"""Acceptance: the static verifier flags every structural mutant, executor-free.

The ISSUE's core property: for all five paper algorithms, every
``drop-op``/``flip-direction``/``flip-offset`` mutant from
:func:`repro.verify.mutations.all_mutants` is *statically* detectable —
without executing a single sort step — while ``swap-steps`` mutants are
well-formed schedules that merely sort wrong (semantic-only).
"""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.analysis.schedule_check import check_schedule
from repro.core.algorithms import ALGORITHM_NAMES, get_algorithm
from repro.verify.mutations import (
    all_mutants,
    classify_mutants,
    classify_mutants_semantic,
)

STATIC_FAMILIES = ("drop-op", "flip-direction", "flip-offset")


def side_for(name: str) -> int:
    return 6 if get_algorithm(name).requires_even_side else 5


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_every_structural_mutant_is_statically_detected(name):
    schedule = get_algorithm(name)
    triples = classify_mutants(schedule, side_for(name))
    assert len(triples) == len(all_mutants(schedule))
    by_family: dict[str, set[str]] = {}
    for label, _, kind in triples:
        by_family.setdefault(label.split("@")[0], set()).add(kind)
    for family in STATIC_FAMILIES:
        if family in by_family:
            assert by_family[family] == {"static"}, (name, family, by_family)
    assert by_family["swap-steps"] == {"semantic"}, (name, by_family)


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_static_detection_holds_at_every_budget_side(name):
    schedule = get_algorithm(name)
    sides = (4, 6, 8) if schedule.requires_even_side else (4, 5, 6, 8)
    for side in sides:
        for label, mutant, kind in classify_mutants(schedule, side):
            expected = "semantic" if label.startswith("swap-steps") else "static"
            assert kind == expected, (name, side, label)


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_genuine_schedule_is_never_misclassified(name):
    # The classifier must not cry wolf: the unmutated schedule is clean.
    assert check_schedule(get_algorithm(name), side_for(name)).ok


EXECUTOR_PREFIXES = (
    "repro.backends",
    "repro.core.engine",
    "repro.core.reference",
    "repro.mesh",
    "repro.rect.engine",
)


def test_analysis_package_never_imports_an_executor():
    """Static import-graph check: detection is a pure function of the IR.

    ``import repro`` itself loads the facade (executors included), so the
    meaningful property is that no module *inside* ``repro.analysis``
    imports one — the verifier would work even if the executors were
    deleted.
    """
    import ast
    from pathlib import Path

    import repro.analysis

    package_dir = Path(repro.analysis.__file__).parent
    offenders = []
    for path in sorted(package_dir.rglob("*.py")):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            names = []
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                names = [node.module]
            for name in names:
                if name.startswith(EXECUTOR_PREFIXES):
                    offenders.append(f"{path.name}: {name}")
    assert not offenders, offenders


def test_classification_adds_no_executor_imports():
    """Process-level check: the classifier itself loads no new executor
    modules beyond what the ``repro`` facade already pulled in."""
    code = (
        "import sys, repro\n"
        "before = {m for m in sys.modules if m.startswith('repro')}\n"
        "from repro.analysis.schedule_check import check_schedule\n"
        "from repro.core.algorithms import ALGORITHM_NAMES, get_algorithm\n"
        "for name in ALGORITHM_NAMES:\n"
        "    side = 6 if get_algorithm(name).requires_even_side else 5\n"
        "    assert check_schedule(get_algorithm(name), side).ok\n"
        f"new = [m for m in sys.modules if m.startswith({EXECUTOR_PREFIXES!r})\n"
        "       and m not in before]\n"
        "assert not new, f'classifier loaded executors: {new}'\n"
        "print('EXECUTOR-FREE')\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr
    assert "EXECUTOR-FREE" in result.stdout


class TestSemanticReclassification:
    """The certifier splits the old "semantic" bucket three ways."""

    def test_shift_pair_mutant_moves_from_semantic_to_statically_refuted(self):
        # Acceptance: a mutant the legacy classifier waves through with
        # *zero* schedule-check violations is proven broken statically.
        from repro.schedules import build_schedule

        schedule = build_schedule("random_network[side=4,steps=6]", seed=0)
        legacy = {label: kind for label, _, kind in classify_mutants(schedule, 1, 4)}
        semantic_labels = {label for label, kind in legacy.items() if kind == "semantic"}
        refuted = {
            label: cert
            for label, _, kind, cert in classify_mutants_semantic(schedule, 1, 4)
            if kind == "statically-refuted"
        }
        promoted = semantic_labels & set(refuted)
        assert promoted, (legacy, sorted(refuted))
        for label in promoted:
            cert = refuted[label]
            assert cert.refuted and cert.witness is not None
            assert not check_schedule(
                [m for lbl, m in all_mutants(schedule) if lbl == label][0], 1, 4
            ).violations

    def test_swap_steps_mutants_of_paper_algorithms_stay_semantic_only(self):
        # Cyclic repetition with full coverage still sorts after a step
        # swap, so the certifier must NOT refute these (they are the
        # residue the dynamic differential suite exists for).
        quads = classify_mutants_semantic(get_algorithm("snake_1"), 4)
        kinds = {label: kind for label, _, kind, _ in quads}
        swaps = {k: v for k, v in kinds.items() if k.startswith("swap-steps")}
        assert swaps and set(swaps.values()) == {"semantic-only"}, kinds
        assert "statically-refuted" in set(kinds.values()), kinds

    def test_structural_mutants_carry_no_certificate(self):
        quads = classify_mutants_semantic(get_algorithm("snake_1"), 4)
        for label, _, kind, cert in quads:
            if kind == "structural":
                assert cert is None, label
            else:
                assert cert is not None, label

    def test_refuted_witnesses_feed_the_corpus_and_replay_clean(self, tmp_path):
        from repro.verify import load_corpus, replay_reproducer

        classify_mutants_semantic(get_algorithm("snake_1"), 4, corpus_dir=tmp_path)
        corpus = load_corpus(tmp_path)
        assert corpus, "no witness reached the corpus"
        for rep in corpus:
            assert rep.prop == "differential"
            assert rep.algorithm == "snake_1"
            assert "semantics certifier" in rep.source
            # Corpus contract: replaying against the *genuine* algorithm
            # must pass — the witness only defeats the mutant.
            assert replay_reproducer(rep) == [], rep.source

    def test_legacy_classifier_is_unchanged(self):
        schedule = get_algorithm("snake_1")
        kinds = {kind for _, _, kind in classify_mutants(schedule, 4)}
        assert kinds == {"static", "semantic"}
