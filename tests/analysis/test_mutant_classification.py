"""Acceptance: the static verifier flags every structural mutant, executor-free.

The ISSUE's core property: for all five paper algorithms, every
``drop-op``/``flip-direction``/``flip-offset`` mutant from
:func:`repro.verify.mutations.all_mutants` is *statically* detectable —
without executing a single sort step — while ``swap-steps`` mutants are
well-formed schedules that merely sort wrong (semantic-only).
"""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.analysis.schedule_check import check_schedule
from repro.core.algorithms import ALGORITHM_NAMES, get_algorithm
from repro.verify.mutations import all_mutants, classify_mutants

STATIC_FAMILIES = ("drop-op", "flip-direction", "flip-offset")


def side_for(name: str) -> int:
    return 6 if get_algorithm(name).requires_even_side else 5


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_every_structural_mutant_is_statically_detected(name):
    schedule = get_algorithm(name)
    triples = classify_mutants(schedule, side_for(name))
    assert len(triples) == len(all_mutants(schedule))
    by_family: dict[str, set[str]] = {}
    for label, _, kind in triples:
        by_family.setdefault(label.split("@")[0], set()).add(kind)
    for family in STATIC_FAMILIES:
        if family in by_family:
            assert by_family[family] == {"static"}, (name, family, by_family)
    assert by_family["swap-steps"] == {"semantic"}, (name, by_family)


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_static_detection_holds_at_every_budget_side(name):
    schedule = get_algorithm(name)
    sides = (4, 6, 8) if schedule.requires_even_side else (4, 5, 6, 8)
    for side in sides:
        for label, mutant, kind in classify_mutants(schedule, side):
            expected = "semantic" if label.startswith("swap-steps") else "static"
            assert kind == expected, (name, side, label)


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def test_genuine_schedule_is_never_misclassified(name):
    # The classifier must not cry wolf: the unmutated schedule is clean.
    assert check_schedule(get_algorithm(name), side_for(name)).ok


EXECUTOR_PREFIXES = (
    "repro.backends",
    "repro.core.engine",
    "repro.core.reference",
    "repro.mesh",
    "repro.rect.engine",
)


def test_analysis_package_never_imports_an_executor():
    """Static import-graph check: detection is a pure function of the IR.

    ``import repro`` itself loads the facade (executors included), so the
    meaningful property is that no module *inside* ``repro.analysis``
    imports one — the verifier would work even if the executors were
    deleted.
    """
    import ast
    from pathlib import Path

    import repro.analysis

    package_dir = Path(repro.analysis.__file__).parent
    offenders = []
    for path in sorted(package_dir.rglob("*.py")):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            names = []
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                names = [node.module]
            for name in names:
                if name.startswith(EXECUTOR_PREFIXES):
                    offenders.append(f"{path.name}: {name}")
    assert not offenders, offenders


def test_classification_adds_no_executor_imports():
    """Process-level check: the classifier itself loads no new executor
    modules beyond what the ``repro`` facade already pulled in."""
    code = (
        "import sys, repro\n"
        "before = {m for m in sys.modules if m.startswith('repro')}\n"
        "from repro.analysis.schedule_check import check_schedule\n"
        "from repro.core.algorithms import ALGORITHM_NAMES, get_algorithm\n"
        "for name in ALGORITHM_NAMES:\n"
        "    side = 6 if get_algorithm(name).requires_even_side else 5\n"
        "    assert check_schedule(get_algorithm(name), side).ok\n"
        f"new = [m for m in sys.modules if m.startswith({EXECUTOR_PREFIXES!r})\n"
        "       and m not in before]\n"
        "assert not new, f'classifier loaded executors: {new}'\n"
        "print('EXECUTOR-FREE')\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr
    assert "EXECUTOR-FREE" in result.stdout
