"""The 0-1 sortedness certifier: verdicts, witnesses, caching, and scope.

Acceptance properties from the ISSUE:

* every paper algorithm plus shearsort and odd_even is CERTIFIED by the
  exhaustive 0-1 check on the declared ``certified_sides``;
* ``row_major_no_wrap`` is REFUTED with a minimal 0-1 witness;
* at least one mutant that the legacy classifier calls ``"semantic"``
  (zero schedule-check violations) is *statically* refuted;
* repeated certification is a cache hit with zero interpreter steps;
* the certifier never imports an executor (the import-graph test in
  ``test_mutant_classification.py`` covers the package; the subprocess
  test here checks the loaded-module set at certification time).
"""

from __future__ import annotations

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.analysis.schedule_check import check_schedule
from repro.analysis.semantics import (
    EXHAUSTIVE_CELL_LIMIT,
    CertificateStore,
    SortednessCertificate,
    certificate_key,
    certified_schedule_report,
    certify_sortedness,
    peek_certificate,
    schedule_digest,
    semantics_cache_clear,
    semantics_cache_info,
    step_budget,
)
from repro.backends.base import resolve_step_cap
from repro.core.schedule import PairOp, Schedule, Step
from repro.errors import AnalysisError
from repro.schedules import (
    available_families,
    build_row_major_no_wrap,
    build_schedule,
    get_family,
    mesh_shape,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    semantics_cache_clear()
    yield
    semantics_cache_clear()


def certify_family(name: str, side: int, **kwargs) -> SortednessCertificate:
    schedule = build_schedule(name, side, seed=0)
    rows, cols = mesh_shape(schedule, side)
    return certify_sortedness(schedule, rows, cols, **kwargs)


class TestCertifiedFamilies:
    @pytest.mark.parametrize("name", [n for n in available_families()])
    def test_declared_certified_sides_are_exhaustively_proven(self, name):
        family = get_family(name)
        for side in family.certified_sides:
            cert = certify_family(name, side)
            assert cert.certified, (name, side, cert.describe())
            assert cert.mode == "exhaustive"
            assert cert.inputs_checked == 2 ** (cert.rows * cert.cols)
            assert cert.step_bound is not None and cert.step_bound >= 1

    def test_paper_shearsort_and_odd_even_declare_sides_2_and_4(self):
        # The ISSUE's headline claim, pinned against registry drift.
        for name in (
            "row_major_row_first", "row_major_col_first",
            "snake_1", "snake_2", "snake_3", "shearsort", "odd_even",
        ):
            assert {2, 4} <= set(get_family(name).certified_sides), name

    def test_generated_families_declare_no_certified_sides(self):
        assert get_family("random_network").certified_sides == ()
        assert get_family("row_major_no_wrap").certified_sides == ()

    def test_certified_bound_is_minimal_and_within_the_runtime_cap(self):
        cert = certify_family("snake_1", 4)
        schedule = build_schedule("snake_1", 4)
        assert cert.step_bound == 27  # pinned: the minimal simultaneous bound
        assert cert.step_bound <= resolve_step_cap(schedule, 4, 4)

    def test_odd_even_bound_equals_array_length(self):
        # Classic odd-even transposition: N steps on a 1 x N array (N = 2
        # degenerates to a single comparator, sorted after step 1).
        for side, expected in ((2, 1), (4, 4), (8, 8)):
            cert = certify_family("odd_even", side)
            assert cert.certified and cert.step_bound == expected, cert.describe()


class TestRefutation:
    def test_no_wrap_is_refuted_with_minimal_witness(self):
        for side in (2, 4):
            cert = certify_sortedness(build_row_major_no_wrap(), side)
            assert cert.refuted, cert.describe()
            assert cert.witness is not None
            assert cert.witness_ones == 2  # global minimum over all witnesses
            arr = cert.witness_array
            assert arr.shape == (side, side)
            assert set(np.unique(arr)) <= {0, 1}

    def test_witness_never_sorts_under_its_own_schedule(self):
        # Replay the witness through the pure interpreter via a fresh
        # certify call on the same schedule: the refutation is stable.
        cert = certify_sortedness(build_row_major_no_wrap(), 4)
        again = certify_sortedness(build_row_major_no_wrap(), 4, use_cache=False)
        assert again.refuted and again.witness == cert.witness

    def test_structural_schedule_is_unknown_not_refuted(self):
        # 0-1 model checking presumes a well-formed oblivious network.
        broken = Schedule(
            name="overlap",
            steps=(Step(PairOp((0, 0), (0, 1)), PairOp((0, 1), (0, 2))),),
            order="row_major",
            metadata={"topology": "linear"},
        )
        cert = certify_sortedness(broken, 1, 3)
        assert cert.verdict == "UNKNOWN"
        assert "0-1" in cert.reason


class TestModesAndLimits:
    def test_exhaustive_beyond_cell_limit_is_a_usage_error(self):
        schedule = build_schedule("snake_1", 5)
        with pytest.raises(AnalysisError):
            certify_sortedness(schedule, 5, 5, mode="exhaustive")
        assert 5 * 5 > EXHAUSTIVE_CELL_LIMIT

    def test_sampling_never_certifies(self):
        cert = certify_family("shearsort", 6)
        assert cert.mode == "sampled"
        assert cert.verdict == "UNKNOWN"
        assert "certify" in cert.reason

    def test_sampling_still_refutes_with_witness(self):
        cert = certify_sortedness(build_row_major_no_wrap(), 6)
        assert cert.mode == "sampled"
        assert cert.refuted and cert.witness is not None
        assert cert.sample_seed == 0

    def test_step_budget_mirrors_the_runtime_cap(self):
        # step_budget is deliberately a *duplicated* pure formula (the
        # analysis layer may not import repro.backends); this test is the
        # contract that keeps the two in lock-step.
        for name in available_families(include_pathological=True):
            for side in (2, 4, 6, 8):
                if get_family(name).requires_even_side and side % 2:
                    continue
                schedule = build_schedule(name, side, seed=0)
                rows, cols = mesh_shape(schedule, side)
                assert step_budget(schedule, rows, cols) == resolve_step_cap(
                    schedule, rows, cols
                ), (name, side)


class TestCaching:
    def test_repeat_certification_is_a_cache_hit_with_zero_steps(self):
        first = certify_family("snake_1", 4)
        steps_after_miss = semantics_cache_info().interpreter_steps
        assert steps_after_miss > 0
        second = certify_family("snake_1", 4)
        info = semantics_cache_info()
        assert second == first
        assert info.hits == 1 and info.misses == 1
        assert info.interpreter_steps == steps_after_miss  # zero new steps

    def test_digest_is_value_identity_not_name_identity(self):
        a = build_schedule("snake_1", 4)
        b = Schedule(
            name="renamed", steps=a.steps, order=a.order, metadata=a.metadata
        )
        assert schedule_digest(a, 4, 4) == schedule_digest(b, 4, 4)
        assert schedule_digest(a, 4, 4) != schedule_digest(a, 2, 2)

    def test_store_roundtrip_across_cache_clear(self, tmp_path):
        store = CertificateStore(tmp_path)
        first = certify_family("snake_1", 4, store=store)
        assert len(list(store.keys())) == 1
        semantics_cache_clear()
        second = certify_family("snake_1", 4, store=store)
        info = semantics_cache_info()
        assert second == first
        assert info.interpreter_steps == 0  # disk hit, no recompute

    def test_corrupt_store_entry_is_quarantined_and_recomputed(self, tmp_path):
        store = CertificateStore(tmp_path)
        first = certify_family("snake_1", 4, store=store)
        [key] = store.keys()
        store.path_for(key).write_text("{not json")
        semantics_cache_clear()
        second = certify_family("snake_1", 4, store=store)
        assert second == first
        assert store.path_for(key).exists()  # rewritten after recompute
        quarantined = list(tmp_path.rglob("*.quarantine"))
        assert len(quarantined) == 1

    def test_peek_never_computes(self):
        schedule = build_schedule("snake_1", 4)
        assert peek_certificate(schedule, 4, 4) is None
        assert semantics_cache_info().interpreter_steps == 0
        cert = certify_sortedness(schedule, 4, 4)
        assert peek_certificate(schedule, 4, 4) == cert

    def test_certificate_json_roundtrip(self):
        cert = certify_sortedness(build_row_major_no_wrap(), 4)
        blob = json.loads(json.dumps(cert.to_json()))
        assert SortednessCertificate.from_json(blob) == cert

    def test_certificate_key_separates_analysis_parameters(self):
        digest = schedule_digest(build_schedule("snake_1", 4), 4, 4)
        a = certificate_key(digest, {"mode": "auto"})
        b = certificate_key(digest, {"mode": "sampled", "sample_seed": 1})
        assert a != b and a.startswith(digest) and b.startswith(digest)


class TestReportIntegration:
    def test_certified_schedule_report_attaches_semantics(self):
        schedule = build_schedule("snake_1", 4)
        report = certified_schedule_report(schedule, 4, 4)
        assert report.ok
        assert report.semantics is not None and report.semantics.certified
        assert "semantics" in report.describe()
        assert report.to_json()["semantics"]["verdict"] == "CERTIFIED"

    def test_plain_report_has_null_semantics(self):
        report = check_schedule(build_schedule("snake_1", 4), 4)
        assert report.semantics is None
        assert report.to_json()["semantics"] is None


class TestExecutorFreedom:
    def test_certifier_loads_no_executor_modules(self):
        code = (
            "import sys, repro\n"
            "before = {m for m in sys.modules if m.startswith('repro')}\n"
            "from repro.analysis.semantics import certify_sortedness\n"
            "from repro.schedules import build_schedule, build_row_major_no_wrap\n"
            "assert certify_sortedness(build_schedule('snake_1', 4), 4, 4).certified\n"
            "assert certify_sortedness(build_row_major_no_wrap(), 4, 4).refuted\n"
            "prefixes = ('repro.backends', 'repro.core.engine',\n"
            "            'repro.core.reference', 'repro.mesh', 'repro.rect.engine')\n"
            "new = [m for m in sys.modules\n"
            "       if m.startswith(prefixes) and m not in before]\n"
            "assert not new, f'certifier loaded executors: {new}'\n"
            "print('EXECUTOR-FREE')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert result.returncode == 0, result.stderr
        assert "EXECUTOR-FREE" in result.stdout


class TestLinearWiring:
    def test_linear_interpreter_matches_line_op_and_pair_op_forms(self):
        # odd_even written with LineOps and the same network written as
        # explicit PairOps must produce identical certificates (modulo
        # digest): the interpreter treats the IR uniformly.
        n = 4
        pair_steps = (
            Step(*(PairOp((0, p), (0, p + 1)) for p in range(0, n - 1, 2))),
            Step(*(PairOp((0, p), (0, p + 1)) for p in range(1, n - 1, 2))),
        )
        pair_form = Schedule(
            name="odd_even_pairs",
            steps=pair_steps,
            order="row_major",
            metadata={"topology": "linear"},
        )
        line_form = build_schedule("odd_even", n)
        a = certify_sortedness(line_form, 1, n)
        b = certify_sortedness(pair_form, 1, n)
        assert a.certified and b.certified
        assert a.step_bound == b.step_bound == n
