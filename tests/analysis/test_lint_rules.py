"""The domain lint engine: per-rule fixtures, suppressions, engine plumbing.

Every rule gets one *trigger* fixture (parsed, never imported) and one
*clean near-miss* that exercises the adjacent-but-allowed pattern.  The
fixtures live under ``tests/analysis/fixtures/`` in ``src/repro/`` and
``tests/`` subtrees so the engine's path-based module naming puts them in
the right rule scope.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.lint import all_rules, get_rule, lint_file, run_lint
from repro.analysis.lint.engine import module_name_for
from repro.analysis.lint.registry import LintRule, ModuleContext, register
from repro.errors import AnalysisError, ReproError

FIXTURES = Path(__file__).parent / "fixtures"

RULE_FIXTURES = {
    "RPR101": FIXTURES / "src" / "repro" / "rpr101_trigger.py",
    "RPR102": FIXTURES / "src" / "repro" / "rpr102_trigger.py",
    "RPR103": FIXTURES / "src" / "repro" / "rpr103_trigger.py",
    "RPR104": FIXTURES / "src" / "repro" / "rpr104_trigger.py",
    "RPR105": FIXTURES / "src" / "repro" / "rpr105_trigger.py",
    "RPR106": FIXTURES / "tests" / "rpr106_trigger.py",
    "RPR107": FIXTURES / "src" / "repro" / "rpr107_trigger.py",
    "RPR108": FIXTURES / "src" / "repro" / "rpr108_trigger.py",
    "RPR109": FIXTURES / "src" / "repro" / "rpr109_trigger.py",
}

CLEAN_FIXTURES = {
    rule_id: path.with_name(path.name.replace("_trigger", "_clean"))
    for rule_id, path in RULE_FIXTURES.items()
}


class TestRuleCatalog:
    def test_every_builtin_rule_has_a_fixture_pair(self):
        assert set(all_rules()) == set(RULE_FIXTURES)
        for path in [*RULE_FIXTURES.values(), *CLEAN_FIXTURES.values()]:
            assert path.is_file(), path

    def test_rules_carry_id_title_and_docstring(self):
        for rule_id, rule in all_rules().items():
            assert rule.id == rule_id
            assert rule.title
            assert rule.__doc__ and rule_id in rule.__doc__

    def test_get_rule_unknown_id(self):
        with pytest.raises(AnalysisError):
            get_rule("RPR999")
        assert get_rule("RPR101").id == "RPR101"
        assert isinstance(AnalysisError("x"), ReproError)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(AnalysisError):

            @register
            class Clone(LintRule):
                id = "RPR101"
                title = "clone"

                def check(self, ctx):
                    return iter(())


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
class TestRuleFixtures:
    def test_trigger_fires_only_its_own_rule(self, rule_id):
        findings, suppressed = lint_file(RULE_FIXTURES[rule_id])
        assert findings, f"{rule_id} trigger produced no findings"
        assert {f.rule for f in findings} == {rule_id}
        assert suppressed == 0

    def test_clean_near_miss_is_silent_under_all_rules(self, rule_id):
        findings, suppressed = lint_file(CLEAN_FIXTURES[rule_id])
        assert findings == [], [f.describe() for f in findings]
        assert suppressed == 0


class TestScoping:
    def test_src_only_rules_ignore_test_modules(self, tmp_path):
        # The same RNG construction is a violation in src, fine in tests.
        source = "import numpy as np\nrng = np.random.default_rng(0)\n"
        src_file = tmp_path / "src" / "repro" / "helper.py"
        test_file = tmp_path / "tests" / "test_helper.py"
        for path in (src_file, test_file):
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source)
        assert {f.rule for f in lint_file(src_file)[0]} == {"RPR101"}
        assert lint_file(test_file)[0] == []

    def test_module_name_for_anchors(self):
        assert module_name_for(Path("src/repro/obs/timing.py")) == "repro.obs.timing"
        assert module_name_for(Path("src/repro/analysis/__init__.py")) == "repro.analysis"
        assert module_name_for(Path("tests/core/test_schedule.py")) == "tests.core.test_schedule"
        assert module_name_for(Path("scripts/tool.py")) == "tool"
        # Fixture paths re-anchor on the *last* src/tests component.
        assert module_name_for(FIXTURES / "src" / "repro" / "x.py") == "repro.x"
        assert (
            module_name_for(FIXTURES / "tests" / "x.py") == "tests.x"
        )

    def test_float_eq_rule_exempts_call_wrapped_literals(self, tmp_path):
        path = tmp_path / "tests" / "test_float.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "def test_ok(approx):\n"
            "    assert 1.0 / 2 == approx(0.5)\n"
            "    assert abs(0.1) == approx(0.1, rel=1e-9)\n"
        )
        findings, _ = lint_file(path, rules=[get_rule("RPR106")])
        # The left side of the first compare holds a bare 1.0: flagged once.
        assert [f.line for f in findings] == [2]


class TestLockHygiene:
    """RPR109 specifics beyond the fixture pair: scope and suppression."""

    def test_lock_primitive_module_is_exempt(self, tmp_path):
        path = tmp_path / "src" / "repro" / "store" / "locks.py"
        path.parent.mkdir(parents=True)
        path.write_text("def hold(lock):\n    lock.acquire()\n")
        assert lint_file(path, rules=[get_rule("RPR109")])[0] == []

    def test_same_code_outside_the_exempt_module_fires(self, tmp_path):
        path = tmp_path / "src" / "repro" / "store" / "other.py"
        path.parent.mkdir(parents=True)
        path.write_text("def hold(lock):\n    lock.acquire()\n")
        findings, _ = lint_file(path, rules=[get_rule("RPR109")])
        assert [f.rule for f in findings] == ["RPR109"]
        assert "`lock`" in findings[0].message

    def test_line_pragma_suppresses_rpr109(self, tmp_path):
        path = tmp_path / "src" / "repro" / "pragma.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "def startup(lock):\n"
            "    lock.acquire()  # repro: allow=RPR109\n"
        )
        findings, suppressed = lint_file(path, rules=[get_rule("RPR109")])
        assert findings == [] and suppressed == 1

    def test_service_layer_release_discipline_is_clean(self):
        root = Path(__file__).parents[2]
        report = run_lint(
            [root / "src" / "repro" / "service", root / "src" / "repro" / "store"],
            rules=[get_rule("RPR109")],
        )
        assert report.ok, report.describe()


class TestSuppressions:
    def test_line_and_file_level_pragmas(self):
        findings, suppressed = lint_file(FIXTURES / "src" / "repro" / "suppressed.py")
        assert findings == []
        assert suppressed == 3  # two RPR104 (file pragma) + one RPR102 (line)

    def test_wildcard_pragma(self, tmp_path):
        path = tmp_path / "src" / "repro" / "wild.py"
        path.parent.mkdir(parents=True)
        path.write_text("raise ValueError('x')  # repro: allow=*\n")
        findings, suppressed = lint_file(path)
        assert findings == [] and suppressed == 1

    def test_file_pragma_outside_window_is_inert(self, tmp_path):
        path = tmp_path / "src" / "repro" / "late.py"
        path.parent.mkdir(parents=True)
        path.write_text("\n" * 12 + "# repro: allow-file=RPR102\nraise ValueError('x')\n")
        findings, _ = lint_file(path)
        assert {f.rule for f in findings} == {"RPR102"}


class TestEngine:
    def test_run_lint_skips_fixture_directories(self):
        report = run_lint([FIXTURES.parent])  # tests/analysis/
        fixture_hits = [f for f in report.findings if "fixtures" in f.path]
        assert fixture_hits == []

    def test_run_lint_accepts_explicit_fixture_file(self):
        report = run_lint([RULE_FIXTURES["RPR102"]])
        assert not report.ok
        assert {f.rule for f in report.findings} == {"RPR102"}

    def test_parse_errors_fail_the_run(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = run_lint([tmp_path])
        assert report.parse_errors and not report.ok
        assert report.findings == []

    def test_missing_path_is_a_usage_error(self, tmp_path):
        with pytest.raises(AnalysisError):
            run_lint([tmp_path / "nope"])

    def test_report_describe_and_json(self):
        report = run_lint([RULE_FIXTURES["RPR105"]])
        assert "RPR105" in report.describe()
        blob = report.to_json()
        assert blob["files_checked"] == 1
        assert all(f["rule"] == "RPR105" for f in blob["findings"])

    def test_rule_subset_selection(self):
        report = run_lint(
            [RULE_FIXTURES["RPR105"], RULE_FIXTURES["RPR107"]],
            rules=[get_rule("RPR107")],
        )
        assert {f.rule for f in report.findings} == {"RPR107"}


class TestRepoIsClean:
    def test_src_and_tests_pass_the_linter(self):
        root = Path(__file__).parents[2]
        report = run_lint([root / "src", root / "tests"])
        assert report.ok, report.describe()
        assert report.files_checked > 100
        assert report.suppressed > 0  # the bit-exactness allows are counted
