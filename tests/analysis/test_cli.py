"""``repro analyze``, the ``repro`` front door, and the compile/verify wiring."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro._version import __version__
from repro.analysis.__main__ import main as analyze_main
from repro.analysis.__main__ import schedule_reports
from repro.backends.compile import compiled_schedule, schedule_cache_clear
from repro.cli import main as repro_main
from repro.core.algorithms import get_algorithm
from repro.core.schedule import FORWARD, LineOp, Schedule, Step
from repro.errors import ScheduleValidationError, UnsupportedMeshError

ROOT = Path(__file__).parents[2]
FIXTURES = Path(__file__).parent / "fixtures"
TRIGGERS = sorted((FIXTURES / "src" / "repro").glob("rpr*_trigger.py")) + [
    FIXTURES / "tests" / "rpr106_trigger.py"
]


class TestAnalyzeCli:
    def test_self_check_repo_is_clean(self):
        """The repo passes its own analyzer: lint + schedule verification."""
        assert analyze_main([str(ROOT / "src"), str(ROOT / "tests"), "--quiet"]) == 0

    @pytest.mark.parametrize("trigger", TRIGGERS, ids=lambda p: p.stem)
    def test_each_trigger_fixture_fails(self, trigger):
        assert analyze_main([str(trigger), "--no-schedules", "--quiet"]) == 1

    def test_list_rules(self, capsys):
        assert analyze_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RPR101", "RPR108", "SCH001", "SCH009"):
            assert rule_id in out

    def test_unknown_rule_is_usage_error(self, capsys):
        assert analyze_main(["--rules", "RPR999", str(FIXTURES)]) == 2
        assert "unknown lint rules" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self):
        assert analyze_main([str(ROOT / "no-such-dir"), "--no-schedules"]) == 2

    def test_rule_subset(self):
        trigger = FIXTURES / "src" / "repro" / "rpr105_trigger.py"
        assert analyze_main([str(trigger), "--no-schedules",
                             "--rules", "RPR101", "--quiet"]) == 0
        assert analyze_main([str(trigger), "--no-schedules",
                             "--rules", "RPR105", "--quiet"]) == 1

    def test_json_report_shape(self, capsys):
        clean = FIXTURES / "src" / "repro" / "rpr101_clean.py"
        assert analyze_main([str(clean), "--json", "--sides", "4"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["version"] == 1 and blob["ok"] is True
        assert blob["lint"]["files_checked"] == 1
        names = {report["name"] for report in blob["schedules"]}
        assert "snake_1" in names
        assert any(name.startswith("shearsort") for name in names)
        assert all(report["oblivious"] for report in blob["schedules"])

    def test_json_out_file(self, tmp_path):
        out = tmp_path / "report" / "analysis.json"
        clean = FIXTURES / "src" / "repro" / "rpr104_clean.py"
        assert analyze_main([str(clean), "--json-out", str(out),
                             "--no-schedules", "--quiet"]) == 0
        assert json.loads(out.read_text())["ok"] is True

    def test_schedule_layer_failure_sets_exit_code(self, capsys):
        # Odd sides only: the even-side algorithms are skipped, the snakes
        # still verify; a clean run.  Then check the no-lint path too.
        assert analyze_main(["--no-lint", "--sides", "5"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_schedule_reports_cover_registry_and_baseline(self):
        reports = schedule_reports((4, 5))
        names = {r.name for r in reports}
        assert "row_major_row_first" in names
        assert any(name.startswith("shearsort") for name in names)
        assert all(r.ok for r in reports)
        # requires_even_side algorithms are not checked at odd sides
        assert not any(r.name.startswith("row_major") and r.rows == 5 for r in reports)


class TestReproFrontDoor:
    def test_version_flag(self, capsys):
        for flag in ("--version", "-V"):
            assert repro_main([flag]) == 0
            assert __version__ in capsys.readouterr().out

    def test_no_args_is_usage_error(self, capsys):
        assert repro_main([]) == 2
        assert "usage: repro" in capsys.readouterr().out

    def test_help_exits_zero(self, capsys):
        assert repro_main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "analyze" in out and "exit codes" in out

    def test_unknown_subcommand(self, capsys):
        assert repro_main(["fnord"]) == 2
        assert "unknown subcommand" in capsys.readouterr().err

    def test_analyze_dispatch(self):
        clean = FIXTURES / "src" / "repro" / "rpr102_clean.py"
        assert repro_main(["analyze", str(clean), "--no-schedules", "--quiet"]) == 0
        trigger = FIXTURES / "src" / "repro" / "rpr102_trigger.py"
        assert repro_main(["analyze", str(trigger), "--no-schedules", "--quiet"]) == 1


class TestCompileIntegration:
    def test_compiled_schedule_exposes_analysis_report(self):
        compiled = compiled_schedule(get_algorithm("snake_1"), 5)
        assert compiled.analysis.ok and compiled.analysis.oblivious
        assert compiled.analysis.rows == compiled.analysis.cols == 5

    def test_analysis_report_is_cached_with_the_kernel(self):
        schedule_cache_clear()
        first = compiled_schedule(get_algorithm("snake_2"), 4)
        second = compiled_schedule(get_algorithm("snake_2"), 4)
        assert second is first
        assert second.analysis is first.analysis

    def test_policy_violations_do_not_block_compilation(self):
        from repro.schedules import build_row_major_no_wrap

        compiled = compiled_schedule(build_row_major_no_wrap(), 4)
        assert [v.rule for v in compiled.analysis.violations] == ["SCH005"]
        assert compiled.analysis.oblivious  # executable, paper-noncompliant

    def test_structural_violations_raise_historical_types(self):
        with pytest.raises(UnsupportedMeshError):
            compiled_schedule(get_algorithm("row_major_row_first"), 5)
        with pytest.raises(UnsupportedMeshError):
            compiled_schedule(get_algorithm("snake_1"), 1)
        clash = Schedule(
            name="clash",
            steps=(
                Step(LineOp("row", 0, FORWARD, lines="odd"),
                     LineOp("row", 1, FORWARD, lines="odd")),
            ),
            order="snake",
        )
        with pytest.raises(ScheduleValidationError):
            compiled_schedule(clash, 4)


class TestVerifyIntegration:
    def test_static_schedule_property_in_verify_sweep(self):
        from repro.verify.runner import VerifyConfig, run_verify

        report = run_verify(VerifyConfig(
            algorithms=("snake_1",), backends=("vectorized",)
        ))
        statics = [r for r in report.records if r.prop == "static_schedule"]
        assert statics and all(r.ok for r in statics)
        assert {r.side for r in statics} == {4, 6}  # smoke-budget sides


class TestCertifyCli:
    def test_certify_sweep_is_clean_and_counts_certificates(self, capsys):
        assert analyze_main(["--no-lint", "--certify", "--sides", "2", "4"]) == 0
        out = capsys.readouterr().out
        assert "certificates: " in out and "0 refuted" in out
        assert "declared certified sides:" in out

    def test_certify_refuted_family_fails_with_witness(self, capsys):
        code = analyze_main([
            "--no-lint", "--certify",
            "--family", "row_major_no_wrap", "--sides", "4",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "statically REFUTED" in out and "witness" in out

    def test_certify_json_carries_semantics_sections(self, capsys):
        assert analyze_main([
            "--no-lint", "--certify", "--json",
            "--family", "row_major_no_wrap", "--sides", "4",
        ]) == 1
        blob = json.loads(capsys.readouterr().out)
        assert blob["ok"] is False
        assert blob["semantics_findings"]
        [report] = blob["schedules"]
        assert report["semantics"]["verdict"] == "REFUTED"
        assert report["semantics"]["witness"] is not None

    def test_family_spec_pins_a_single_instance(self, capsys):
        assert analyze_main([
            "--no-lint", "--family", "random_network[side=8,seed=7]",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("schedule 'random_network") == 1
        assert "1 schedule report(s)" in out

    def test_family_without_side_sweeps_requested_sides(self):
        reports = schedule_reports((4, 6), family="shearsort")
        assert [r.rows for r in reports] == [4, 6]

    def test_unknown_family_is_usage_error(self, capsys):
        assert analyze_main(["--no-lint", "--family", "nope"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_bad_spec_is_usage_error(self, capsys):
        assert analyze_main(["--no-lint", "--family", "snake_1[side=big]"]) == 2
        assert "bad parameter" in capsys.readouterr().err

    def test_certify_with_no_schedules_is_usage_error(self, capsys):
        assert analyze_main(["--no-schedules", "--certify"]) == 2
        assert "--no-schedules" in capsys.readouterr().err

    def test_certificate_dir_persists_artifacts(self, tmp_path, capsys):
        from repro.analysis.semantics import semantics_cache_clear

        store_dir = tmp_path / "certs"
        argv = [
            "--no-lint", "--certify", "--quiet",
            "--family", "snake_1", "--sides", "4",
            "--certificate-dir", str(store_dir),
        ]
        assert analyze_main(argv) == 0
        capsys.readouterr()
        written = list(store_dir.rglob("*.json"))
        assert len(written) == 1
        # Second run in a fresh in-memory cache reuses the stored proof.
        semantics_cache_clear()
        assert analyze_main(argv) == 0
        assert list(store_dir.rglob("*.json")) == written

    def test_front_door_certify_dispatch(self, capsys):
        assert repro_main([
            "analyze", "--no-lint", "--certify", "--quiet",
            "--family", "odd_even", "--sides", "4",
        ]) == 0
        assert "PASS" in capsys.readouterr().out


class TestCompileSemanticsHook:
    def test_compile_attaches_cached_certificate_without_computing(self):
        from repro.analysis.semantics import (
            certify_sortedness,
            semantics_cache_clear,
            semantics_cache_info,
        )

        schedule_cache_clear()
        semantics_cache_clear()
        compiled = compiled_schedule(get_algorithm("snake_3"), 4)
        assert compiled.analysis.semantics is None  # nothing known yet
        assert semantics_cache_info().interpreter_steps == 0

        cert = certify_sortedness(get_algorithm("snake_3"), 4, 4)
        schedule_cache_clear()
        compiled = compiled_schedule(get_algorithm("snake_3"), 4)
        assert compiled.analysis.semantics == cert
