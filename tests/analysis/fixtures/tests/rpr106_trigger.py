"""RPR106 trigger: float-literal equality in test code."""


def test_mean():
    mean = sum([0.25, 0.75]) / 2
    assert mean == 0.5
    assert mean != 0.25 + 0.125
