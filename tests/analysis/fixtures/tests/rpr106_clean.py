"""RPR106 near-miss: approx comparisons and integer equality."""

import pytest


def test_mean():
    mean = sum([0.25, 0.75]) / 2
    assert mean == pytest.approx(0.5)
    assert round(mean * 2) == 1
