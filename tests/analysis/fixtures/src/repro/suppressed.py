"""Suppression-syntax fixture: every violation here is explicitly allowed."""
# repro: allow-file=RPR104

import time


def measure(fn):
    start = time.perf_counter()  # file-level pragma above silences RPR104
    fn()
    if fn is None:
        raise ValueError("unreachable")  # repro: allow=RPR102
    return time.time() - start
