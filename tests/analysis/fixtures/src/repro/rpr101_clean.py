"""RPR101 near-miss: randomness routed through repro.randomness."""

from repro.randomness import as_generator, as_seed_sequence, spawn_generators


def draw(side, seed):
    # rng.random() has the "random" tail but is a stream read, not a
    # constructor; as_* are the sanctioned construction path.
    rng = as_generator(as_seed_sequence((seed, side)))
    children = spawn_generators(rng, 2)
    return rng.random(), children
