"""RPR104 trigger: ad-hoc wall-clock reads outside repro.obs.timing."""

import time


def measure(fn):
    start = time.perf_counter()
    fn()
    wall = time.time()
    return time.perf_counter() - start, wall
