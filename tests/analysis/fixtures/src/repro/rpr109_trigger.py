"""Fixture: RPR109 triggers — leases acquired with no release path."""


def leaky_claim(lock):
    if not lock.try_acquire():
        return None
    return do_work()


def leaky_blocking(lock):
    lock.acquire()
    do_work()


def do_work():
    return "working"
