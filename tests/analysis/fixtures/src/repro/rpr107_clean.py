"""RPR107 near-miss: specific catches, and broad catches that act."""

from repro.errors import AnalysisError, ReproError


def load(path):
    try:
        return path.read_text()
    except FileNotFoundError:
        pass  # a *specific* ignore is an explicit decision
    try:
        return path.read_bytes()
    except Exception as exc:
        raise AnalysisError(f"unreadable {path}") from exc


def probe(fn):
    try:
        fn()
    except ReproError:
        pass  # library failures are the expected outcome being probed
