"""RPR105 near-miss: None-defaults and immutable containers."""


def accumulate(value, acc=None):
    if acc is None:
        acc = []
    acc.append(value)
    return acc


def tally(value, *, sides=(4, 6), label=""):
    return {side: (value, label) for side in sides}
