"""RPR103 trigger: observer-event construction outside the driver."""

from repro.obs.events import RunStart, StepEvent


def emit_my_own(obs, side):
    obs.on_run_start(RunStart(executor="rogue", algorithm="snake_1",
                              side=side, max_steps=1, order="snake"))
    obs.on_step(StepEvent(t=1))
