"""RPR101 trigger: RNG construction outside repro.randomness.

Parsed (never imported) by tests/analysis/test_lint_rules.py; the path
puts it in the ``repro.*`` module namespace so src-only rules fire.
"""

import random

import numpy as np
from numpy.random import default_rng


def draw(side):
    rng = np.random.default_rng(1234)
    legacy = np.random.RandomState(0)
    seq = np.random.SeedSequence(7)
    return rng, legacy, seq, random.random(), default_rng(0)
