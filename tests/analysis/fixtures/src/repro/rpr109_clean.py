"""Fixture: RPR109 near-misses — every acquire has a release path."""


class Lease:
    def __init__(self, lock):
        self.lock = lock


class Holder:
    def __init__(self):
        self._lock = None

    def adopt(self, lock):
        lock.acquire()
        self._lock = lock  # instance-held: released by close()

    def reacquire(self):
        self._lock.acquire()  # attribute receivers are instance-held

    def close(self):
        self._lock.release()


def transfer(lock):
    if not lock.try_acquire():
        return None
    return Lease(lock=lock)


def guarded(lock):
    lock.acquire()
    try:
        return do_work()
    finally:
        lock.release()


def do_work():
    return "done"
