"""RPR103 near-miss: events routed through the driver's emit_* helpers."""

from repro.backends.driver import emit_run_end, emit_run_start


class RunStartSummary:
    """A similarly-named local class is not a run-level event."""


def run(obs, schedule, side):
    emit_run_start(obs, executor="x", algorithm=schedule, side=side,
                   max_steps=1, order="snake")
    summary = RunStartSummary()
    emit_run_end(obs, steps=1, completed=True, wall_time=0.0)
    return summary
