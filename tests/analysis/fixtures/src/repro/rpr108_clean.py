"""RPR108 near-miss: local generators and unrelated .seed attributes."""

from repro.randomness import as_generator


class Spec:
    def seed(self, value):
        return value


def run(spec: Spec, seed):
    # spec.seed(...) shares the attribute name but touches no global RNG.
    rng = as_generator(spec.seed(seed))
    return rng.random()
