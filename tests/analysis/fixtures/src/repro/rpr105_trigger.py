"""RPR105 trigger: mutable default arguments."""


def accumulate(value, acc=[]):
    acc.append(value)
    return acc


def tally(value, *, counts={}, labels=set()):
    counts[value] = counts.get(value, 0) + 1
    labels.add(value)
    return counts


def build(value, out=list()):
    out.append(value)
    return out
