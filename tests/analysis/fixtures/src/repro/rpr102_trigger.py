"""RPR102 trigger: bare builtin exceptions raised from library code."""


def check(value):
    if value < 0:
        raise ValueError(f"negative value {value}")
    if value > 100:
        raise RuntimeError
    return value
