"""RPR107 trigger: silently swallowed broad excepts."""


def load(path):
    try:
        return path.read_text()
    except Exception:
        pass
    try:
        return path.read_bytes()
    except:  # noqa: E722
        "nothing to see here"
    return None
