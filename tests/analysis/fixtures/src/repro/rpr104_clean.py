"""RPR104 near-miss: StopWatch for measurement; sleep is not a clock read."""

import time

from repro.obs.timing import StopWatch


def measure(fn):
    watch = StopWatch().start()
    fn()
    time.sleep(0)  # scheduling, not timing: allowed
    return watch.elapsed
