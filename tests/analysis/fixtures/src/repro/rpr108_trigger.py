"""RPR108 trigger: process-global RNG seeding."""

import numpy as np
import numpy.random

np.random.seed(0)


def reset(seed):
    numpy.random.seed(seed)
