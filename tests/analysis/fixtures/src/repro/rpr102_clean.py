"""RPR102 near-miss: the repro.errors taxonomy, abstract hooks, re-raises."""

from repro.errors import DimensionError


def check(value):
    if value < 0:
        raise DimensionError(f"negative value {value}")
    try:
        return value + 1
    except OverflowError:
        raise  # a bare re-raise is not a bare builtin raise


def hook():
    raise NotImplementedError  # abstract hooks are exempt by design
