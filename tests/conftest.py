"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# One profile for the whole suite: no deadline (grid runs have variable
# cost), a moderate example budget so the full suite stays fast.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for non-hypothesis randomized tests."""
    return np.random.default_rng(20260706)


@pytest.fixture(params=[4, 6, 8])
def even_side(request) -> int:
    return request.param


@pytest.fixture(params=[5, 7])
def odd_side(request) -> int:
    return request.param
