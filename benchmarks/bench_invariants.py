"""E-L123 / E-T1: lemma invariants and potential lower bounds on traces."""


def bench_e_l123(run_recorded):
    table = run_recorded("E-L123")
    assert all(row[-1] == 0 for row in table.rows)


def bench_e_t1_potentials(run_recorded):
    table = run_recorded("E-T1")
    assert all(row[-1] == 0 for row in table.rows)
