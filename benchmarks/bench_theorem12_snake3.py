"""E-T12: Theorem 12 — snake_3's walk bound, tail, and min-home contrast."""


def bench_e_t12_average(run_recorded):
    table = run_recorded("E-T12-avg")
    assert all(row[-1] for row in table.rows)


def bench_e_t12_tail(run_recorded):
    table = run_recorded("E-T12")
    assert all(row[-1] for row in table.rows)


def bench_e_minhome(run_recorded):
    table = run_recorded("E-MINHOME")
    # snake_3's mean/N stays bounded away from zero; the others' mean/sqrt(N)
    # stays small — checked coarsely here, precisely in EXPERIMENTS.md.
    snake3_rows = [r for r in table.rows if r[0] == "snake_3"]
    other_rows = [r for r in table.rows if r[0] != "snake_3"]
    assert all(r[-1] > 0.3 for r in snake3_rows)
    assert all(r[-2] < 5.0 for r in other_rows)
