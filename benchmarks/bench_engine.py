"""E-ENGINE: executor micro-benchmarks and the DESIGN.md ablations.

These are true microkernel benchmarks (pytest-benchmark repeats them):

* per-algorithm step throughput of the vectorized engine;
* ablation: batched execution vs per-trial loops;
* ablation: vectorized engine vs the pure-Python reference machine;
* ablation: completion-check cadence (every step vs every cycle).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import ALGORITHM_NAMES, get_algorithm
from repro.core.engine import CompiledSchedule, run_until_sorted
from repro.core.reference import ReferenceMachine
from repro.randomness import random_permutation_grid

SIDE = 32
STEPS = 64


@pytest.mark.parametrize("name", ALGORITHM_NAMES)
def bench_step_throughput(benchmark, name):
    """Steps/second for a single side-32 grid."""
    compiled = CompiledSchedule(get_algorithm(name), SIDE)
    grid = random_permutation_grid(SIDE, rng=0)

    def run():
        work = grid.copy()
        compiled.run(work, STEPS)
        return work

    benchmark(run)


def bench_ablation_batched_execution(benchmark):
    """64 grids advanced together — compare per-op cost against
    ``bench_ablation_per_trial_loop``."""
    compiled = CompiledSchedule(get_algorithm("snake_1"), SIDE)
    grids = random_permutation_grid(SIDE, batch=64, rng=0)

    def run():
        work = grids.copy()
        compiled.run(work, STEPS)
        return work

    benchmark(run)


def bench_ablation_per_trial_loop(benchmark):
    """The same 64 grids advanced one at a time (the naive design)."""
    compiled = CompiledSchedule(get_algorithm("snake_1"), SIDE)
    grids = random_permutation_grid(SIDE, batch=64, rng=0)

    def run():
        out = []
        for i in range(grids.shape[0]):
            work = grids[i].copy()
            compiled.run(work, STEPS)
            out.append(work)
        return out

    benchmark(run)


def bench_ablation_reference_engine(benchmark):
    """Pure-Python oracle on a small grid (side 8) — the cost that
    justifies the vectorized engine."""
    grid = random_permutation_grid(8, rng=0)

    def run():
        machine = ReferenceMachine(get_algorithm("snake_1"), grid)
        machine.run(STEPS)
        return machine.grid

    benchmark(run)


def bench_ablation_numpy_engine_same_size(benchmark):
    """Vectorized engine on the identical side-8 workload."""
    compiled = CompiledSchedule(get_algorithm("snake_1"), 8)
    grid = random_permutation_grid(8, rng=0)

    def run():
        work = grid.copy()
        compiled.run(work, STEPS)
        return work

    benchmark(run)


def bench_ablation_check_every_step(benchmark):
    """run_until_sorted with the step-exact completion check (the default,
    needed for the paper's step-exact t_f)."""
    grid = random_permutation_grid(16, batch=16, rng=1)

    def run():
        return run_until_sorted(get_algorithm("snake_1"), grid)

    benchmark(run)


def bench_ablation_check_every_cycle(benchmark):
    """Manual variant checking sortedness only once per 4-step cycle —
    cheaper per step but only cycle-granular t_f."""
    from repro.core.orders import target_grid

    grids = random_permutation_grid(16, batch=16, rng=1)
    compiled = CompiledSchedule(get_algorithm("snake_1"), 16)
    target = target_grid(grids, 16, "snake")

    def run():
        work = grids.copy()
        t = 0
        done = np.zeros(grids.shape[0], dtype=bool)
        while t < 4096 and not done.all():
            for _ in range(4):
                t += 1
                compiled.apply_step(work, t)
            done = np.all(work == target, axis=(-2, -1))
        return t

    benchmark(run)


def bench_rect_engine(benchmark):
    """Rectangular executor on a 16x64 mesh (same N as 32x32)."""
    from repro.rect.engine import RectCompiledSchedule
    rows, cols = 16, 64
    compiled = RectCompiledSchedule(get_algorithm("snake_1"), rows, cols)
    rng = np.random.default_rng(0)
    grid = rng.permutation(rows * cols).reshape(rows, cols)

    def run():
        work = grid.copy()
        for t in range(1, STEPS + 1):
            compiled.apply_step(work, t)
        return work

    benchmark(run)


def bench_fault_engine_overhead(benchmark):
    """Fault injector at p=0.1 on the side-32 workload (vs bench_step_throughput)."""
    from repro.core.faults import FaultyCompiledSchedule

    compiled = FaultyCompiledSchedule(
        get_algorithm("snake_1"), SIDE, failure_rate=0.1, rng=0
    )
    grid = random_permutation_grid(SIDE, rng=0)

    def run():
        work = grid.copy()
        for t in range(1, STEPS + 1):
            compiled.apply_step(work, t)
        return work

    benchmark(run)
