"""E-T7: Theorem 7 — first snakelike average >= ~N/2 - sqrt(N)/2 - 4."""


def bench_e_t7(run_recorded):
    table = run_recorded("E-T7")
    assert all(row[-1] for row in table.rows)
