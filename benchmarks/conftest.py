"""Shared fixtures for the benchmark harness.

Each bench target regenerates one experiment of the paper (see the
per-experiment index in DESIGN.md), records its result table under
``benchmarks/results/``, and asserts the reproduction criterion (bound
holds / zero violations).  ``pytest benchmarks/ --benchmark-only`` runs the
lot; add ``-s`` to see the tables inline.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import run_experiment
from repro.experiments.tables import Table

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def cfg() -> ExperimentConfig:
    """Quick-scale config: the benches must finish in seconds each."""
    return ExperimentConfig(scale="quick")


@pytest.fixture
def record_table():
    """Persist a result table and echo it to stdout."""

    def _record(exp_id: str, table: Table) -> Table:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{exp_id}.txt").write_text(table.to_text() + "\n")
        print("\n" + table.to_text())
        return table

    return _record


@pytest.fixture
def run_recorded(benchmark, cfg, record_table):
    """Benchmark one experiment end to end (single round — the experiments
    are Monte-Carlo aggregates, not microkernels) and record its table."""

    def _run(exp_id: str) -> Table:
        table = benchmark.pedantic(
            lambda: run_experiment(exp_id, cfg), rounds=1, iterations=1
        )
        return record_table(exp_id, table)

    return _run
