"""E-BACKENDS: the unified backend layer's overhead and cache ablations.

True microkernel benchmarks (pytest-benchmark repeats them):

* the schedule-compilation LRU cache: cold compile vs warm lookup, and its
  effect on a Monte-Carlo sampling loop that re-resolves the same
  ``(algorithm, side)`` pair per batch;
* driver overhead: ``run_sort`` through the backend layer vs driving the
  compiled kernels by hand;
* backend comparison on an identical small workload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    CompiledSchedule,
    compiled_schedule,
    run_sort,
    schedule_cache_clear,
)
from repro.core.algorithms import get_algorithm
from repro.core.orders import target_grid
from repro.experiments.montecarlo import _sort_steps_values
from repro.randomness import random_permutation_grid

SIDE = 32
STEPS = 64


def bench_compile_cold(benchmark):
    """Full schedule compilation (validation + kernel construction),
    cache cleared every round — what every run paid before the cache."""
    schedule = get_algorithm("snake_1")

    def run():
        schedule_cache_clear()
        return compiled_schedule(schedule, SIDE)

    benchmark(run)


def bench_compile_warm(benchmark):
    """Cache hit for the same ``(schedule, side)`` key."""
    schedule = get_algorithm("snake_1")
    schedule_cache_clear()
    compiled_schedule(schedule, SIDE)

    def run():
        return compiled_schedule(schedule, SIDE)

    benchmark(run)


def bench_sampler_with_cache(benchmark):
    """Monte-Carlo sampling loop with small batches: each batch re-resolves
    the compilation, so the cache is hit once per batch."""

    def run():
        return _sort_steps_values("snake_1", 12, 32, seed=0, batch_size=4)

    benchmark(run)


def bench_sampler_cold_cache(benchmark):
    """The identical sampling loop but with the cache cleared each round —
    an upper bound on what repeated compilation used to cost."""

    def run():
        schedule_cache_clear()
        return _sort_steps_values("snake_1", 12, 32, seed=0, batch_size=4)

    benchmark(run)


def bench_driver_run_sort(benchmark):
    """Sort-to-completion through the backend layer (vectorized backend)."""
    grids = random_permutation_grid(16, batch=16, rng=1)
    schedule = get_algorithm("snake_1")

    def run():
        return run_sort("vectorized", schedule, grids)

    benchmark(run)


def bench_driver_manual_loop(benchmark):
    """The same workload driven by hand against the compiled kernels —
    the driver's bookkeeping overhead is the difference."""
    grids = random_permutation_grid(16, batch=16, rng=1)
    compiled = CompiledSchedule(get_algorithm("snake_1"), 16)
    target = target_grid(grids, 16, "snake")

    def run():
        work = grids.copy()
        t = 0
        done = np.all(work == target, axis=(-2, -1))
        while t < 4096 and not done.all():
            t += 1
            compiled.apply_step(work, t)
            done = np.all(work == target, axis=(-2, -1))
        return t

    benchmark(run)


@pytest.mark.parametrize("backend", ["vectorized", "rect", "reference", "mesh"])
def bench_backend_small_sort(benchmark, backend):
    """All four backends on an identical side-8 sort — the price of each
    execution substrate under the same driver."""
    grid = random_permutation_grid(8, rng=0)
    schedule = get_algorithm("snake_1")

    def run():
        return run_sort(backend, schedule, grid)

    benchmark(run)
