"""E-CAMP: campaign-runner scaling and overhead measurements.

Two pieces:

* ``main()`` — a standalone scaling study: one >=512-trial side-16
  sort-steps campaign run at ``--workers 1/2/4``, reporting wall-clock
  and speedup (plus the verified bit-identity of the three samples).
  This produces the table recorded in docs/PERFORMANCE.md ("Parallel
  campaigns").  Run it directly::

      PYTHONPATH=src python benchmarks/bench_campaign.py [--trials 512]

  Speedup is bounded by the physical core count: on a single-core
  container the workers serialize and the study degenerates to measuring
  pool overhead — ``main()`` prints the detected core count so the
  recorded numbers can be read honestly.

* pytest-benchmark targets measuring the *fixed* costs the campaign layer
  adds on top of the raw sampler: shard bookkeeping at workers=1 and the
  checkpoint write path.  These run with the rest of ``pytest
  benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.campaign import CampaignSpec, run_campaign
from repro.experiments.montecarlo import _sort_steps_values

SIDE = 16
TRIALS = 512
SHARD_SIZE = 32
SEED = 20260805


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def scaling_study(trials: int = TRIALS, side: int = SIDE) -> dict:
    """Time the same campaign at workers 1/2/4; verify bit-identity."""
    spec = CampaignSpec(
        "snake_1", side=side, trials=trials, seed=SEED, shard_size=SHARD_SIZE
    )
    rows = []
    digests = set()
    for workers in (1, 2, 4):
        start = time.perf_counter()
        result = run_campaign(spec, workers=workers)
        elapsed = time.perf_counter() - start
        rows.append({"workers": workers, "seconds": elapsed})
        digests.add(result.values_digest)
    assert len(digests) == 1, "campaign values changed with worker count!"
    base = rows[0]["seconds"]
    for row in rows:
        row["speedup"] = base / row["seconds"]
    return {
        "spec": {"algorithm": "snake_1", "side": side, "trials": trials,
                 "shard_size": SHARD_SIZE, "seed": SEED},
        "cores": _cpu_count(),
        "digest": digests.pop(),
        "rows": rows,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=TRIALS)
    parser.add_argument("--side", type=int, default=SIDE)
    parser.add_argument(
        "--json", metavar="FILE", help="also write the raw numbers as JSON"
    )
    args = parser.parse_args(argv)

    study = scaling_study(args.trials, args.side)
    print(
        f"campaign scaling: snake_1 side={args.side} trials={args.trials} "
        f"shard_size={SHARD_SIZE} on {study['cores']} core(s)"
    )
    print(f"{'workers':>8s} {'seconds':>9s} {'speedup':>8s}")
    for row in study["rows"]:
        print(f"{row['workers']:8d} {row['seconds']:9.2f} {row['speedup']:7.2f}x")
    print(f"values digest (identical at every worker count): {study['digest']}")
    if study["cores"] < 4:
        print(
            f"note: only {study['cores']} core(s) available — parallel "
            "speedup is capped at 1x here; the speedup column measures "
            "pool overhead, not scaling."
        )
    if args.json:
        Path(args.json).write_text(json.dumps(study, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


# ----------------------------------------------------------------------
# pytest-benchmark targets: fixed overheads of the campaign layer.
# ----------------------------------------------------------------------

_BENCH_TRIALS = 64
_BENCH_SIDE = 8


def bench_raw_sampler(benchmark):
    """Baseline: the bare in-process sampler the campaign path wraps."""

    def run():
        return _sort_steps_values("snake_1", _BENCH_SIDE, _BENCH_TRIALS, seed=1)

    benchmark(run)


def bench_campaign_serial_overhead(benchmark):
    """The same workload through run_campaign at workers=1: shard plan,
    per-shard SeedSequence derivation, merge — everything but the pool."""
    spec = CampaignSpec(
        "snake_1", side=_BENCH_SIDE, trials=_BENCH_TRIALS, seed=1, shard_size=16
    )

    def run():
        return run_campaign(spec, workers=1)

    benchmark(run)


def bench_campaign_checkpoint_write(benchmark):
    """workers=1 plus the JSONL checkpoint append path."""
    spec = CampaignSpec(
        "snake_1", side=_BENCH_SIDE, trials=_BENCH_TRIALS, seed=1, shard_size=16
    )

    def run():
        with tempfile.TemporaryDirectory() as tmp:
            return run_campaign(spec, workers=1, checkpoint_dir=tmp)

    benchmark(run)


if __name__ == "__main__":
    sys.exit(main())
