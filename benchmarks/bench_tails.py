"""E-TAILS: Theorems 3, 5, 8, 11 — empirical tails vs Chebyshev bounds."""


def bench_e_tails(run_recorded):
    table = run_recorded("E-TAILS")
    assert all(row[-1] for row in table.rows)


def bench_e_exact_tails(run_recorded):
    table = run_recorded("E-EXACT")
    assert all(row[-1] for row in table.rows)
