"""E-1D: Section 1 linear-array facts (worst case N, average >= (N-1)/2)."""


def bench_e_1d(run_recorded):
    table = run_recorded("E-1D")
    for row in table.rows:
        n, _, mean, lower, _, worst, upper = row
        assert lower <= mean <= upper
        assert worst <= upper
