"""E-C1 / E-NOWRAP: worst-case adversary and the wrap-wire necessity."""


def bench_e_c1(run_recorded):
    table = run_recorded("E-C1")
    assert all(row[-1] for row in table.rows)


def bench_e_nowrap(run_recorded):
    table = run_recorded("E-NOWRAP")
    assert all(row[2] is False for row in table.rows)
