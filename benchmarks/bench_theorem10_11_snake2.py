"""E-T10: Theorem 10 — second snakelike average >= N/2 - sqrt(N)/2 - 4."""


def bench_e_t10(run_recorded):
    table = run_recorded("E-T10")
    assert all(row[-1] for row in table.rows)
