"""E-L4 / E-L9 / E-VAR: first and second moments, MC vs exact vs paper."""


def bench_e_l4_row_major_moments(run_recorded):
    table = run_recorded("E-L4")
    assert all(row[-1] for row in table.rows)


def bench_e_l9_snake_moments(run_recorded):
    table = run_recorded("E-L9")
    assert all(row[-1] for row in table.rows)


def bench_e_var_variances(run_recorded):
    table = run_recorded("E-VAR")
    assert all(row[-1] for row in table.rows)
