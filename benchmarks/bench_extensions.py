"""Extension experiments: constants fit, concentration, traffic, adaptivity,
worst-case search (see DESIGN.md section 6 and EXPERIMENTS.md)."""


def bench_e_const(run_recorded):
    table = run_recorded("E-CONST")
    assert all(row[4] for row in table.rows)  # fitted c above paper bound


def bench_e_dist(run_recorded):
    table = run_recorded("E-DIST")
    # concentration: 90% of mass within ~35% of the median
    assert all(row[-1] < 0.5 for row in table.rows)


def bench_e_traffic(run_recorded):
    table = run_recorded("E-TRAFFIC")
    for row in table.rows:
        name, _, _, comparisons, swaps, frac, wrap_share = row
        assert swaps <= comparisons
        if name.startswith("row_major"):
            assert wrap_share > 0
        else:
            assert wrap_share == 0


def bench_e_adapt(run_recorded):
    table = run_recorded("E-ADAPT")
    for row in table.rows:
        assert row[2] == 0.0  # sorted input: zero steps
        assert row[3] < row[4] or row[4] == 0  # nearly sorted beats random


def bench_e_worst(run_recorded):
    table = run_recorded("E-WORST")
    assert all(row[-1] for row in table.rows)


def bench_e_rect(run_recorded):
    table = run_recorded("E-RECT")
    # Theta(N) across aspect ratios: steps/N in a sane band everywhere
    assert all(0.4 < row[-1] < 2.5 for row in table.rows)


def bench_e_fault(run_recorded):
    table = run_recorded("E-FAULT")
    transient = [r for r in table.rows if isinstance(r[2], float)]
    dead = [r for r in table.rows if not isinstance(r[2], float)]
    assert all(r[-1] for r in transient)  # transient faults: always sorts
    assert all(not r[-1] for r in dead)  # dead wrap wires: never sorts


def bench_e_decay(run_recorded):
    table = run_recorded("E-DECAY")
    for row in table.rows:
        fractions = row[2:]
        assert fractions[0] == 1.0
        assert all(a >= b - 1e-9 for a, b in zip(fractions, fractions[1:]))
        assert fractions[-1] < 0.05  # near-sorted by t = 2N
