"""E-T2: Theorem 2 — row-first row-major average >= N/2 - 2 sqrt(N)."""


def bench_e_t2(run_recorded):
    table = run_recorded("E-T2")
    assert all(row[-1] for row in table.rows)
