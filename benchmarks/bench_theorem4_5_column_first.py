"""E-T4: Theorem 4 — column-first row-major average >= 3N/8 - 2 sqrt(N)."""


def bench_e_t4(run_recorded):
    table = run_recorded("E-T4")
    assert all(row[-1] for row in table.rows)
