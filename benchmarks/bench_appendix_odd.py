"""E-APP: appendix odd-side results (Theorem 13, Corollary 4, Lemma 14)."""


def bench_e_app_average(run_recorded):
    table = run_recorded("E-APP")
    assert all(row[-1] for row in table.rows)


def bench_e_app_theorem13(run_recorded):
    table = run_recorded("E-APP-T13")
    assert all(row[-1] == 0 for row in table.rows)
