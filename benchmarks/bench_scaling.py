"""E-SCALE: the headline figure — Theta(N) for all five vs shearsort."""


def bench_e_scale(run_recorded):
    table = run_recorded("E-SCALE")
    # every bubble sort keeps steps/N within a band; shearsort's steps/N falls
    by_algo = {}
    for row in table.rows:
        by_algo.setdefault(row[0], []).append(row[4])
    for name, ratios in by_algo.items():
        if name.startswith("shearsort"):
            assert ratios[-1] < ratios[0]  # sub-linear in N
        else:
            assert max(ratios) / min(ratios) < 1.6  # Theta(N): flat band
