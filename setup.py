"""Setup shim for environments without the `wheel` package (offline).

All metadata lives in pyproject.toml; this file only enables legacy
`pip install -e .` / `python setup.py develop` when PEP 660 editable
builds are unavailable.
"""

from setuptools import setup

setup()
