#!/usr/bin/env python
"""Cycle-by-cycle convergence report for one sorting run.

Run:  python examples/trace_report.py [algorithm] [side] [--trace DIR]

Prints, per 4-step cycle: inversions against the target order, the
analysis potential (M surplus for row-major, Z1/Y1 for the snakes), the
column zero-count spread of the threshold view, and where the minimum is —
the quantities Sections 2 and 3 of the paper track.

With ``--trace DIR`` the same run additionally streams schema-valid JSONL
events (per-step grid digests, per-cycle potentials) to
``DIR/events.jsonl`` and a replayable manifest to ``DIR/manifest.json`` —
the observability machinery of docs/OBSERVABILITY.md on a single run.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.core import ALGORITHM_NAMES
from repro.obs import (
    CompositeObserver,
    JsonlTraceSink,
    PotentialObserver,
    RunManifest,
    StopWatch,
    write_manifest,
)
from repro.randomness import random_permutation_grid
from repro.zeroone.diagnostics import render_report, run_diagnostics

RNG_SEED = 3


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("algorithm", nargs="?", default="snake_1",
                        choices=ALGORITHM_NAMES)
    parser.add_argument("side", nargs="?", type=int, default=10)
    parser.add_argument("--trace", metavar="DIR",
                        help="also write events.jsonl + manifest.json to DIR")
    args = parser.parse_args()

    grid = random_permutation_grid(args.side, rng=RNG_SEED)

    sink = None
    potentials = PotentialObserver()
    observer = potentials
    if args.trace:
        sink = JsonlTraceSink(Path(args.trace) / "events.jsonl")
        observer = CompositeObserver([potentials, sink])

    with StopWatch() as watch:
        records = run_diagnostics(args.algorithm, grid, observer=observer)

    print(f"{args.algorithm} on a {args.side}x{args.side} mesh "
          f"(N = {args.side * args.side}; sorted after {records[-1].t} steps)\n")
    print(render_report(records))
    print("\nwatch: inversions fall to 0 and the column spread equalizes; the"
          "\npotential loses at most 1 per cycle (Theorem 6/9's engine) while"
          "\nconverging to its balanced final value.")

    if sink is not None:
        sink.close()
        manifest = write_manifest(
            Path(args.trace) / "manifest.json",
            RunManifest(
                kind="run",
                algorithm=args.algorithm,
                seed=RNG_SEED,
                side=args.side,
                elapsed_seconds=watch.elapsed,
                extra={
                    "events": str(sink.path),
                    "steps": records[-1].t,
                    "potential_trajectory": potentials.trajectory,
                },
            ),
        )
        print(f"\ntrace: {sink.path}\nmanifest: {manifest}")


if __name__ == "__main__":
    main()
