#!/usr/bin/env python
"""Cycle-by-cycle convergence report for one sorting run.

Run:  python examples/trace_report.py [algorithm] [side]

Prints, per 4-step cycle: inversions against the target order, the
analysis potential (M surplus for row-major, Z1/Y1 for the snakes), the
column zero-count spread of the threshold view, and where the minimum is —
the quantities Sections 2 and 3 of the paper track.
"""

from __future__ import annotations

import sys

from repro.core import ALGORITHM_NAMES
from repro.randomness import random_permutation_grid
from repro.zeroone.diagnostics import render_report, run_diagnostics


def main() -> None:
    algorithm = sys.argv[1] if len(sys.argv) > 1 else "snake_1"
    side = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    if algorithm not in ALGORITHM_NAMES:
        raise SystemExit(f"unknown algorithm; choose from {ALGORITHM_NAMES}")

    grid = random_permutation_grid(side, rng=3)
    records = run_diagnostics(algorithm, grid)
    print(f"{algorithm} on a {side}x{side} mesh "
          f"(N = {side * side}; sorted after {records[-1].t} steps)\n")
    print(render_report(records))
    print("\nwatch: inversions fall to 0 and the column spread equalizes; the"
          "\npotential loses at most 1 per cycle (Theorem 6/9's engine) while"
          "\nconverging to its balanced final value.")


if __name__ == "__main__":
    main()
