#!/usr/bin/env python
"""Sorting under comparator failures.

Run:  python examples/fault_tolerance.py [side]

Three demonstrations on top of the fault-injection engine:

1. transient failures (each comparator no-ops with probability p): every
   algorithm still sorts, and small noise can even *help* the row-major
   algorithms;
2. dead wrap-around wires: the smallest-column adversary is trapped forever
   (Section 1's argument, reproduced as a permanent fault);
3. a single dead comparator: the sort typically deadlocks with the damage
   confined to the dead pair's neighbourhood.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.baselines import smallest_column_adversary
from repro.core import ALGORITHM_NAMES, get_algorithm
from repro.core.engine import default_step_cap
from repro.core.faults import faulty_run_until_sorted
from repro.core.orders import target_grid
from repro.randomness import random_permutation_grid


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    if side % 2 != 0:
        raise SystemExit("use an even side")
    rng = np.random.default_rng(17)
    trials = 24

    print("1) transient failures — mean steps (all runs sort):\n")
    rates = (0.0, 0.1, 0.3, 0.5)
    print(f"{'algorithm':22s} " + " ".join(f"p={r:<6.1f}" for r in rates))
    for name in ALGORITHM_NAMES:
        grids = np.stack([random_permutation_grid(side, rng=rng) for _ in range(trials)])
        row = []
        for rate in rates:
            out = faulty_run_until_sorted(
                get_algorithm(name), grids,
                max_steps=40 * side * side, failure_rate=rate, rng=rng,
                raise_on_cap=True,
            )
            row.append(float(np.mean(out.steps)))
        print(f"{name:22s} " + " ".join(f"{v:8.1f}" for v in row))

    print("\n2) dead wrap wires on the smallest-column adversary:")
    dead_wrap = [((h, side - 1), (h + 1, 0)) for h in range(side - 1)]
    out = faulty_run_until_sorted(
        get_algorithm("row_major_row_first"), smallest_column_adversary(side),
        max_steps=8 * side * side, dead_pairs=dead_wrap,
    )
    print(f"   sorted after {8 * side * side} steps? "
          f"{'yes' if out.all_completed else 'NO — trapped, as Section 1 predicts'}")

    print("\n3) one dead comparator ((2,2)-(2,3)) on random inputs:")
    dead_one = [((2, 2), (2, 3))]
    stuck = 0
    for _ in range(8):
        grid = random_permutation_grid(side, rng=rng)
        out = faulty_run_until_sorted(
            get_algorithm("row_major_row_first"), grid,
            max_steps=default_step_cap(side), dead_pairs=dead_one,
        )
        if not out.all_completed:
            stuck += 1
            tgt = target_grid(grid, side, "row_major")
            rows = sorted({int(r) for r, _ in np.argwhere(out.final != tgt)})
            print(f"   deadlocked; mismatches confined to rows {rows}")
    print(f"   {stuck}/8 runs deadlocked — permanent faults are fatal, "
          "transient ones are not.")


if __name__ == "__main__":
    main()
