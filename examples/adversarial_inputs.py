#!/usr/bin/env python
"""Worst-case inputs and the necessity of wrap-around wires.

Run:  python examples/adversarial_inputs.py [side]

Shows three things on the smallest-column adversary (smallest sqrt(N)
values stacked in column 1):

1. both row-major algorithms need >= 2N - 4*sqrt(N) steps (Corollary 1),
   far above their ~N average;
2. without the wrap-around wires the input can *never* be sorted
   (Section 1's motivation for the extra wires);
3. the processor-level mesh machine agrees with the vectorized engine and
   shows how much traffic the wrap wires carry.
"""

from __future__ import annotations

import sys

from repro.baselines import row_major_no_wrap, smallest_column_adversary
from repro.core import get_algorithm, sort_grid
from repro.mesh import mesh_sort
from repro.theory.bounds import corollary1_worst_case_lower
from repro.viz import render_zero_one
from repro.zeroone import threshold_matrix


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    if side % 2 != 0:
        raise SystemExit("row-major algorithms require an even side")
    n_cells = side * side
    adversary = smallest_column_adversary(side)

    print(f"Adversarial input on a {side}x{side} mesh — threshold view "
          f"(# = one of the {side} smallest values):\n")
    print(render_zero_one(threshold_matrix(adversary, side)))
    print()

    bound = corollary1_worst_case_lower(side)
    for name in ("row_major_row_first", "row_major_col_first"):
        report = sort_grid(name, adversary)
        print(f"{name:22s} sorts it in {report.steps_scalar():5d} steps "
              f"(Corollary 1 bound: {bound}, average is ~{n_cells})")

    cap = 8 * n_cells
    report = sort_grid(row_major_no_wrap(), adversary, max_steps=cap)
    print(f"\nwithout wrap-around wires: sorted after {cap} steps? "
          f"{'yes' if report.outcome.all_completed else 'NO — the column is trapped'}")

    t_f, machine = mesh_sort(get_algorithm("row_major_row_first"), adversary,
                             max_steps=8 * n_cells)
    wrap_traffic = sum(
        count for (a, b), count in machine.stats.comparisons.items()
        if abs(a[1] - b[1]) > 1
    )
    print(f"\nprocessor-level machine: t_f = {t_f} (matches the engine), "
          f"{machine.stats.total_comparisons()} comparator firings, "
          f"{wrap_traffic} on the wrap wires")


if __name__ == "__main__":
    main()
