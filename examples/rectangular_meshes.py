#!/usr/bin/env python
"""The five algorithms on rectangular meshes (extension).

Run:  python examples/rectangular_meshes.py [N]

Holds the cell count roughly fixed and sweeps the aspect ratio, showing
that the Θ(N) average is a property of the algorithms — not of squareness —
and how the constants react to elongation.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core import ALGORITHM_NAMES, get_algorithm
from repro.rect import rect_run_until_sorted


def shapes_for(n_target: int) -> list[tuple[int, int]]:
    side = max(int(round(n_target**0.5)) // 2 * 2, 4)
    return [
        (side, side),
        (side // 2, side * 2),
        (side * 2, side // 2),
        (side // 2 + 1, side * 2),
        (2, side * side // 2),
    ]


def main() -> None:
    n_target = int(sys.argv[1]) if len(sys.argv) > 1 else 144
    rng = np.random.default_rng(9)
    trials = 24

    shapes = shapes_for(n_target)
    print(f"{'algorithm':22s} " + " ".join(f"{r}x{c}".rjust(9) for r, c in shapes))
    for name in ALGORITHM_NAMES:
        schedule = get_algorithm(name)
        cells = []
        for rows, cols in shapes:
            if schedule.requires_even_side and cols % 2 != 0:
                cells.append("   (odd)")
                continue
            n_cells = rows * cols
            grids = np.stack(
                [rng.permutation(n_cells).reshape(rows, cols) for _ in range(trials)]
            )
            out = rect_run_until_sorted(schedule, grids, raise_on_cap=True)
            cells.append(f"{float(np.mean(out.steps)) / n_cells:9.3f}")
        print(f"{name:22s} " + " ".join(cells))
    print("\n(entries are mean steps / N; '(odd)' = wrap constraint violated)")


if __name__ == "__main__":
    main()
