#!/usr/bin/env python
"""Race the five bubble sorts against shearsort across mesh sizes.

Run:  python examples/algorithm_race.py [--trials T] [--sides 8,12,16,20]

Reproduces the paper's headline as a chart: every 2-D bubble sort needs
Θ(N) steps on average (curves grow linearly in N), while shearsort needs
only Θ(sqrt(N) log N) — the gap widens as the mesh grows.
"""

from __future__ import annotations

import argparse

from repro.baselines import shearsort
from repro.core import ALGORITHM_NAMES
from repro.experiments import sample
from repro.viz import ascii_series


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=48)
    parser.add_argument("--sides", default="8,12,16,20")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (campaign mode when != 1)")
    args = parser.parse_args()
    sides = [int(s) for s in args.sides.split(",")]

    contenders = list(ALGORITHM_NAMES) + ["shearsort"]
    means: dict[str, list[float]] = {name: [] for name in contenders}
    print(f"{'algorithm':22s} " + " ".join(f"side={s:<4d}" for s in sides))
    for name in contenders:
        for side in sides:
            algorithm = shearsort(side) if name == "shearsort" else name
            result = sample(algorithm, side=side, trials=args.trials,
                            seed=(2026, side), workers=args.workers)
            means[name].append(result.stats.mean)
        print(f"{name:22s} " + " ".join(f"{m:8.1f}" for m in means[name]))

    print("\nMean steps vs N (watch shearsort flatten away from the pack):")
    n_values = [s * s for s in sides]
    print(ascii_series(n_values, means))


if __name__ == "__main__":
    main()
