#!/usr/bin/env python
"""Quickstart: sort a random permutation with each of the five algorithms.

Run:  python examples/quickstart.py [side]

Demonstrates the core public API: building a random permutation grid,
sorting it to completion with a named algorithm, and inspecting the result.
"""

from __future__ import annotations

import sys

from repro import ALGORITHM_NAMES, random_permutation_grid, sort_grid
from repro.core import describe_algorithm, get_algorithm
from repro.theory.bounds import diameter_lower_bound


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    n_cells = side * side
    grid = random_permutation_grid(side, rng=2026)

    print(f"Sorting a random permutation of {n_cells} numbers on a "
          f"{side}x{side} mesh (diameter bound: {diameter_lower_bound(side)} steps)\n")

    for name in ALGORITHM_NAMES:
        schedule = get_algorithm(name)
        if schedule.requires_even_side and side % 2 != 0:
            print(f"{name:22s}  (skipped: requires even side)")
            continue
        report = sort_grid(name, grid)
        steps = report.steps_scalar()
        print(f"{name:22s}  {steps:6d} steps   steps/N = {steps / n_cells:.3f}")

    print("\nStep cycle of the first snakelike algorithm:")
    print(describe_algorithm("snake_1"))


if __name__ == "__main__":
    main()
