#!/usr/bin/env python
"""Watch the smallest element walk the snake under the third algorithm.

Run:  python examples/smallest_element_walk.py [side]

Lemmas 12-13: under snake_3 the cell holding the global minimum moves
deterministically backwards along the snake path — at most one snake rank
per pair of steps, exactly one on even pairs.  This script tracks the
actual minimum through a run, prints it against the lemma-predicted walk,
and checks the 2m-3 step bound of Theorem 12.
"""

from __future__ import annotations

import sys

from repro.core.orders import rank_of_position
from repro.randomness import random_permutation_grid
from repro.zeroone import (
    min_cell,
    min_trajectory,
    predicted_walk,
    steps_lower_bound_from_rank,
    steps_until_min_home,
)
from repro.core.engine import default_step_cap


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    grid = random_permutation_grid(side, rng=7)
    start = min_cell(grid)
    m = rank_of_position(*start, side, "snake") + 1  # 1-based snake rank

    print(f"{side}x{side} mesh; minimum starts at cell {start} "
          f"(the cell of the m={m}-th smallest value in snake order)")
    print(f"Theorem 12: at least 2m-3 = {steps_lower_bound_from_rank(m)} steps "
          "are needed to bring it home.\n")

    pairs = min(2 * m + 4, 4 * side * side)
    actual = min_trajectory("snake_3", grid, pairs)
    predicted = predicted_walk(start, side, pairs)

    print(f"{'pair':>4s} {'after step':>10s} {'actual':>10s} {'predicted':>10s} "
          f"{'snake rank':>10s}")
    for i, (a, p) in enumerate(zip(actual, predicted)):
        rank = rank_of_position(*a, side, "snake")
        marker = "" if a == p else "  <-- MISMATCH"
        print(f"{i:4d} {2 * (i + 1):10d} {str(a):>10s} {str(p):>10s} {rank:10d}{marker}")
        if a == (0, 0):
            break

    home = steps_until_min_home("snake_3", grid, max_steps=default_step_cap(side))
    print(f"\nminimum reached the top-left cell after {home} steps "
          f"(lower bound was {steps_lower_bound_from_rank(m)})")


if __name__ == "__main__":
    main()
