#!/usr/bin/env python
"""Validate the paper's closed-form moments against Monte Carlo.

Run:  python examples/theory_validation.py [--trials T] [--side S]

For a random threshold matrix A01, measures the potential statistics after
the first step of each algorithm and compares:

* the Monte-Carlo mean,
* the exact hypergeometric value (ground truth), and
* the paper's printed closed form (Lemmas 4, 9, 11, 14).
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.experiments import sample
from repro.theory import appendix, moments
from repro.zeroone import first_column_zeros, y1_statistic, z1_statistic


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=20000)
    parser.add_argument("--side", type=int, default=16)
    args = parser.parse_args()
    side = args.side
    if side % 2 != 0:
        raise SystemExit("use an even side (the odd case is shown separately below)")
    n = side // 2

    cases = [
        ("E[Z1] after step 1 of row-first (Lemma 4)",
         "row_major_row_first", 1, first_column_zeros,
         moments.e_Z1_row_first(n), 2 * n * moments.e_z1_row_first_paper(n)),
        ("E[Z1] after col+row sort of col-first (Theorem 4)",
         "row_major_col_first", 2, first_column_zeros,
         moments.e_Z1_col_first(n), n * moments.e_z1_col_first_paper(n)),
        ("E[Z1(0)] after step 1 of snake_1 (Lemma 9)",
         "snake_1", 1, z1_statistic,
         moments.e_Z1_0_snake1(side), moments.e_Z1_0_snake1_paper(side)),
        ("E[Y1(0)] after step 1 of snake_2 (Lemma 11)",
         "snake_2", 1, y1_statistic,
         moments.e_Y1_0_snake2(side), moments.e_Y1_0_snake2_paper(side)),
    ]
    print(f"side={side}, trials={args.trials}\n")
    header = f"{'quantity':52s} {'MC mean':>10s} {'exact':>10s} {'paper':>10s}"
    print(header)
    print("-" * len(header))
    for title, algo, steps, stat, exact, paper in cases:
        stats = sample(
            algo, side=side, trials=args.trials, kind="statistic",
            statistic=stat, num_steps=steps, seed=(42, side),
        ).stats
        print(f"{title:52s} {stats.mean:10.4f} {float(exact):10.4f} {float(paper):10.4f}")

    odd = side + 1 if (side + 1) % 2 == 1 else side - 1
    stats = sample(
        "snake_1", side=odd, trials=args.trials, kind="statistic",
        statistic=z1_statistic, seed=(42, odd),
    ).stats
    print(
        f"{'E[Z1(0)] odd side ' + str(odd) + ' (Lemma 14)':52s} "
        f"{stats.mean:10.4f} {float(appendix.e_Z1_0_snake1_odd(odd)):10.4f} "
        f"{float(appendix.e_Z1_0_snake1_odd_paper(odd)):10.4f}"
    )

    print("\nVariance of Z1(0) for snake_1 (Theorem 8): the printed (17/8)n^2 is")
    print("contradicted by both exact combinatorics and Monte Carlo:")
    values = sample(
        "snake_1", side=side, trials=args.trials, kind="statistic",
        statistic=z1_statistic, seed=(43, side),
    ).values
    print(f"  MC variance    = {np.var(values, ddof=1):10.4f}")
    print(f"  exact variance = {float(moments.var_Z1_0_snake1(side)):10.4f}")
    print(f"  paper's form   = {float(moments.var_Z1_0_snake1_paper(n)):10.4f}")


if __name__ == "__main__":
    main()
