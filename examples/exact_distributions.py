#!/usr/bin/env python
"""Exact distributions of the paper's potential statistics.

Run:  python examples/exact_distributions.py [side]

Computes the full exact PMF of Z1(0) (the first snakelike algorithm's
potential after step 1) via the disjoint-block dynamic program, draws it
as an ASCII chart against a Monte-Carlo histogram, and prints the exact
lower-tail probabilities that sharpen Theorem 8's Chebyshev bound.
"""

from __future__ import annotations

import sys
from fractions import Fraction

import numpy as np

from repro.core import get_algorithm
from repro.core.engine import run_fixed_steps
from repro.randomness import random_zero_one_grid
from repro.theory.chebyshev import theorem8_tail_bound
from repro.theory.distributions import (
    lower_tail,
    theorem8_tail_exact,
    z1_0_snake1_pmf,
)
from repro.theory.moments import e_Z1_0_snake1
from repro.zeroone import z1_statistic


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    if side % 2 != 0:
        raise SystemExit("use an even side")

    pmf = z1_0_snake1_pmf(side)
    floats = np.array([float(p) for p in pmf])
    mean = float(e_Z1_0_snake1(side))
    print(f"Exact PMF of Z1(0) for snake_1 on a {side}x{side} mesh "
          f"(mean {mean:.3f}, support 0..{len(pmf) - 1})\n")

    # Monte-Carlo histogram for comparison
    grids = random_zero_one_grid(side, batch=20000, rng=1)
    after = run_fixed_steps(get_algorithm("snake_1"), grids, 1)
    values = np.asarray(z1_statistic(after))
    hist = np.bincount(values, minlength=len(pmf)) / len(values)

    lo = max(int(mean) - 18, 0)
    hi = min(int(mean) + 18, len(pmf) - 1)
    peak = floats[lo : hi + 1].max()
    print(f"{'x':>5s} {'exact':>9s} {'MC':>9s}  (bar = exact)")
    for x in range(lo, hi + 1):
        bar = "#" * int(round(44 * floats[x] / peak))
        print(f"{x:5d} {floats[x]:9.5f} {hist[x]:9.5f}  {bar}")

    print("\nExact lower tails vs Theorem 8's Chebyshev bound (gamma = 0.1):")
    gamma = Fraction(1, 10)
    exact = float(theorem8_tail_exact(side, gamma))
    cheb = float(theorem8_tail_bound(side, gamma))
    print(f"  exact Pr[potential event] = {exact:.3e}")
    print(f"  Chebyshev bound           = {cheb:.3e}")
    print(f"  -> the potential argument is ~{cheb / max(exact, 1e-300):.1e}x "
          "stronger than the paper's Chebyshev step reports")

    print("\nExact CDF checkpoints:")
    for frac in (0.25, 0.5, 0.75, 1.0):
        t = mean * frac
        print(f"  Pr[Z1(0) <= {t:7.2f}] = {float(lower_tail(pmf, t)):.3e}")


if __name__ == "__main__":
    main()
