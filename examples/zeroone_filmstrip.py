#!/usr/bin/env python
"""Filmstrip of a 0-1 matrix under the row-first row-major algorithm.

Run:  python examples/zeroone_filmstrip.py [side] [cycles]

Visualizes the paper's travel lemmas: start from a random threshold matrix
A01 (# marks the zeroes — the small half of the values) and watch the
zeroes drift toward the odd columns and the top, wrapping from column 1 to
column 2n at the even row steps.
"""

from __future__ import annotations

import sys

from repro.core import get_algorithm
from repro.core.engine import iter_steps
from repro.randomness import random_zero_one_grid
from repro.viz import filmstrip
from repro.zeroone import z1_statistic
from repro.zeroone.weights import column_zeros


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    cycles = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    if side % 2 != 0:
        raise SystemExit("the row-major algorithms require an even side")
    grid = random_zero_one_grid(side, rng=11)

    frames = [grid]
    labels = ["t=0"]
    schedule = get_algorithm("row_major_row_first")
    for t, snap in iter_steps(schedule, grid, 4 * cycles):
        if t % 4 == 0:  # one frame per full cycle
            frames.append(snap)
            labels.append(f"t={t}")

    print(f"Random A01 on a {side}x{side} mesh under row_major_row_first "
          f"(# = zero; one frame per 4-step cycle):\n")
    print(filmstrip(frames, labels=labels))

    print("\nZeroes per column over the same frames (watch them equalize):")
    for label, frame in zip(labels, frames):
        zeros = column_zeros(frame)
        print(f"  {label:>6s}: {' '.join(f'{int(z):2d}' for z in zeros)}"
              f"   (snake potential Z1 = {z1_statistic(frame)})")


if __name__ == "__main__":
    main()
